"""Unit tests for FPTreeJoin (Section V-B, Algorithms 2 and 3, Fig. 5)."""

import pytest

from repro.core.document import Document
from repro.join.fptree import FPTree
from repro.join.fptree_join import FPTreeJoiner, fptree_join
from repro.join.ordering import AttributeOrder


class TestFig5Example:
    """Finding the join partners of d1 in the Table I tree."""

    def test_d1_joins_only_d3(self, table1_documents):
        d1 = table1_documents[0]
        others = [d for d in table1_documents if d.doc_id != 1]
        tree = FPTree.build(
            others, AttributeOrder.from_documents(table1_documents)
        )
        assert fptree_join(tree, d1) == [3]

    def test_pruning_of_b8_subtree(self, table1_documents):
        """d1 carries b:7, so the whole b:8 branch must be pruned; d2 and
        d4 (stored under b:8) never appear in the result."""
        tree = FPTree.build(table1_documents)
        result = fptree_join(tree, table1_documents[0])
        assert 2 not in result and 4 not in result


class TestGeneralTraversal:
    def test_no_shared_attribute_yields_nothing(self):
        tree = FPTree.build([Document({"a": 1}, doc_id=1)])
        assert fptree_join(tree, Document({"z": 1})) == []

    def test_conflict_prunes_subtree_documents(self):
        docs = [
            Document({"a": 1, "b": 2}, doc_id=1),
            Document({"a": 1, "b": 3}, doc_id=2),
        ]
        tree = FPTree.build(docs)
        probe = Document({"a": 1, "b": 2})
        assert fptree_join(tree, probe) == [1]

    def test_partner_below_nonshared_prefix(self):
        """A stored doc can join even when the branch prefix contains
        attributes the probe lacks (shared count starts later)."""
        docs = [
            Document({"a": 1, "b": 2, "c": 3}, doc_id=1),
            Document({"a": 1, "b": 2}, doc_id=2),
        ]
        tree = FPTree.build(docs)
        probe = Document({"c": 3})  # shares only c with d1
        assert fptree_join(tree, probe) == [1]

    def test_zero_shared_pairs_excluded_along_branch(self):
        """Documents on a branch sharing no pair with the probe are not
        collected even when no conflict occurs."""
        docs = [Document({"a": 1}, doc_id=1), Document({"a": 1, "b": 2}, doc_id=2)]
        tree = FPTree.build(docs)
        probe = Document({"b": 2, "z": 9})
        # d2 shares b:2; d1 shares nothing (but also does not conflict)
        assert fptree_join(tree, probe) == [2]

    def test_empty_tree(self):
        tree = FPTree(AttributeOrder(("a",)))
        assert fptree_join(tree, Document({"a": 1})) == []


class TestFastPath:
    @pytest.fixture
    def bool_docs(self) -> list[Document]:
        return [
            Document({"bool": True, "x": 1}, doc_id=1),
            Document({"bool": True, "y": 2}, doc_id=2),
            Document({"bool": False, "x": 1}, doc_id=3),
            Document({"bool": False}, doc_id=4),
        ]

    def test_fast_path_matches_general_traversal(self, bool_docs):
        tree = FPTree.build(bool_docs)
        probe = Document({"bool": True, "x": 1})
        fast = sorted(fptree_join(tree, probe, use_fast_path=True))
        slow = sorted(fptree_join(tree, probe, use_fast_path=False))
        assert fast == slow == [1, 2]

    def test_fast_path_prunes_conflicting_half(self, bool_docs):
        tree = FPTree.build(bool_docs)
        probe = Document({"bool": False, "x": 1})
        assert sorted(fptree_join(tree, probe)) == [3, 4]

    def test_probe_missing_ubiquitous_attribute_falls_back(self, bool_docs):
        """A probe without 'bool' cannot conflict on it and must see
        partners from both halves of the tree."""
        tree = FPTree.build(bool_docs)
        probe = Document({"x": 1})
        assert sorted(fptree_join(tree, probe)) == [1, 3]

    def test_fast_path_no_matching_child_returns_empty(self):
        docs = [Document({"f": 1, "x": 1}, doc_id=1)]
        tree = FPTree.build(docs)
        assert fptree_join(tree, Document({"f": 2, "x": 1})) == []

    def test_docs_collected_along_fast_path(self):
        """Documents terminating inside the ubiquitous prefix are partners."""
        docs = [
            Document({"f": 1, "g": 2}, doc_id=1),  # ends at level 2
            Document({"f": 1, "g": 2, "x": 3}, doc_id=2),
        ]
        tree = FPTree.build(docs)
        probe = Document({"f": 1, "g": 2, "x": 3, "q": 0})
        assert sorted(fptree_join(tree, probe)) == [1, 2]

    def test_two_level_fast_path(self):
        docs = [
            Document({"f": i % 2, "g": i % 3, "v": i}, doc_id=i) for i in range(12)
        ]
        tree = FPTree.build(docs)
        probe = Document({"f": 0, "g": 0, "v": 6})
        fast = sorted(fptree_join(tree, probe, use_fast_path=True))
        slow = sorted(fptree_join(tree, probe, use_fast_path=False))
        assert fast == slow


class TestFPTreeJoinerOperator:
    def test_probe_then_add_discipline(self):
        joiner = FPTreeJoiner()
        first = Document({"a": 1}, doc_id=1)
        assert joiner.probe(first) == []
        joiner.add(first)
        assert joiner.probe(Document({"a": 1}, doc_id=2)) == [1]

    def test_reset_evicts_everything(self):
        joiner = FPTreeJoiner()
        joiner.add(Document({"a": 1}, doc_id=1))
        joiner.reset()
        assert len(joiner) == 0
        assert joiner.probe(Document({"a": 1})) == []

    def test_reset_keeps_explicit_order(self):
        order = AttributeOrder(("b", "a"))
        joiner = FPTreeJoiner(order)
        joiner.add(Document({"a": 1, "b": 2}, doc_id=1))
        joiner.reset()
        assert joiner.tree.order is order

    def test_with_sample_order(self, table1_documents):
        joiner = FPTreeJoiner.with_sample_order(table1_documents)
        assert joiner.tree.order.attributes == ("b", "a", "c")

    def test_name(self):
        assert FPTreeJoiner.name == "FPJ"
