"""Tests for the N-ary multi-stream join."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.document import Document
from repro.join.multistream import (
    MultiStreamJoiner,
    StreamPair,
    brute_force_stream_pairs,
)
from tests.conftest import document_lists


class TestMultiStreamJoiner:
    def test_three_streams_pairwise_matches(self):
        joiner = MultiStreamJoiner(("logs", "alerts", "tickets"))
        joiner.process(Document({"host": "h1"}, doc_id=1), "logs")
        joiner.process(Document({"host": "h1"}, doc_id=2), "alerts")
        pairs = joiner.process(Document({"host": "h1"}, doc_id=3), "tickets")
        assert set(pairs) == {
            StreamPair.of("tickets", 3, "logs", 1),
            StreamPair.of("tickets", 3, "alerts", 2),
        }

    def test_intra_stream_excluded(self):
        joiner = MultiStreamJoiner(("a", "b"))
        joiner.process(Document({"k": 1}, doc_id=1), "a")
        assert joiner.process(Document({"k": 1}, doc_id=2), "a") == []

    def test_unknown_stream_rejected(self):
        joiner = MultiStreamJoiner(("a", "b"))
        with pytest.raises(ValueError, match="unknown stream"):
            joiner.process(Document({"k": 1}, doc_id=1), "c")

    def test_needs_two_streams(self):
        with pytest.raises(ValueError):
            MultiStreamJoiner(("solo",))

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="unique"):
            MultiStreamJoiner(("a", "a"))

    def test_reset(self):
        joiner = MultiStreamJoiner(("a", "b"))
        joiner.process(Document({"k": 1}, doc_id=1), "a")
        joiner.reset()
        assert len(joiner) == 0
        assert joiner.process(Document({"k": 1}, doc_id=2), "b") == []

    def test_pair_normalization(self):
        assert StreamPair.of("b", 2, "a", 1) == StreamPair.of("a", 1, "b", 2)

    @given(
        a=document_lists(min_size=0, max_size=8),
        b=document_lists(min_size=0, max_size=8),
        c=document_lists(min_size=0, max_size=8),
        order_seed=st.randoms(use_true_random=False),
    )
    @settings(max_examples=30, deadline=None)
    def test_property_matches_brute_force(self, a, b, c, order_seed):
        streams = {"a": a, "b": b, "c": c}
        arrivals = [
            (doc, name) for name, docs in streams.items() for doc in docs
        ]
        order_seed.shuffle(arrivals)
        joiner = MultiStreamJoiner(("a", "b", "c"))
        pairs: set[StreamPair] = set()
        for doc, name in arrivals:
            pairs.update(joiner.process(doc, name))
        assert frozenset(pairs) == brute_force_stream_pairs(streams)
