"""Unit tests for the NLJ and HBJ baseline joiners."""

import pytest

from repro.core.document import Document
from repro.join.hash_join import HashJoiner
from repro.join.nested_loop import NestedLoopJoiner


@pytest.fixture(params=[NestedLoopJoiner, HashJoiner], ids=["NLJ", "HBJ"])
def joiner(request):
    return request.param()


class TestCommonBehaviour:
    def test_probe_empty_state(self, joiner):
        assert joiner.probe(Document({"a": 1})) == []

    def test_probe_finds_joinable(self, joiner):
        joiner.add(Document({"a": 1, "b": 2}, doc_id=1))
        assert joiner.probe(Document({"a": 1, "c": 3})) == [1]

    def test_probe_skips_conflicting(self, joiner):
        joiner.add(Document({"a": 1, "b": 2}, doc_id=1))
        assert joiner.probe(Document({"a": 1, "b": 9})) == []

    def test_probe_skips_disjoint(self, joiner):
        joiner.add(Document({"a": 1}, doc_id=1))
        assert joiner.probe(Document({"z": 1})) == []

    def test_multiple_partners(self, joiner):
        joiner.add(Document({"a": 1}, doc_id=1))
        joiner.add(Document({"a": 1, "b": 2}, doc_id=2))
        joiner.add(Document({"a": 2}, doc_id=3))
        assert sorted(joiner.probe(Document({"a": 1}))) == [1, 2]

    def test_partner_reported_once(self, joiner):
        """A stored doc sharing several pairs is still one partner."""
        joiner.add(Document({"a": 1, "b": 2, "c": 3}, doc_id=1))
        assert joiner.probe(Document({"a": 1, "b": 2, "c": 3})) == [1]

    def test_reset(self, joiner):
        joiner.add(Document({"a": 1}, doc_id=1))
        joiner.reset()
        assert len(joiner) == 0
        assert joiner.probe(Document({"a": 1})) == []

    def test_add_requires_doc_id(self, joiner):
        with pytest.raises(ValueError, match="doc_id"):
            joiner.add(Document({"a": 1}))

    def test_len_counts_stored(self, joiner):
        joiner.add(Document({"a": 1}, doc_id=1))
        joiner.add(Document({"b": 1}, doc_id=2))
        assert len(joiner) == 2


class TestHashJoinerSpecific:
    def test_posting_list_lengths(self):
        joiner = HashJoiner()
        joiner.add(Document({"a": 1, "b": 2}, doc_id=1))
        joiner.add(Document({"a": 1}, doc_id=2))
        assert sorted(joiner.posting_list_lengths()) == [1, 2]

    def test_names(self):
        assert NestedLoopJoiner.name == "NLJ"
        assert HashJoiner.name == "HBJ"
