"""Tests for the two-stream (R ⋈ S) join extension."""

import pytest
from hypothesis import given, settings

from repro.core.document import Document
from repro.join.binary import (
    LEFT,
    RIGHT,
    BinaryJoinPair,
    BinaryStreamJoiner,
    binary_join_window,
    brute_force_binary_pairs,
)
from repro.join.hash_join import HashJoiner
from repro.join.nested_loop import NestedLoopJoiner
from tests.conftest import document_lists


class TestBinaryJoiner:
    def test_cross_stream_pair_found(self):
        joiner = BinaryStreamJoiner()
        assert joiner.process(Document({"q": 7}, doc_id=1), LEFT) == []
        pairs = joiner.process(Document({"q": 7}, doc_id=2), RIGHT)
        assert pairs == [BinaryJoinPair(1, 2)]

    def test_intra_stream_pairs_excluded(self):
        """Two joinable documents on the SAME stream never pair."""
        joiner = BinaryStreamJoiner()
        joiner.process(Document({"q": 7}, doc_id=1), LEFT)
        assert joiner.process(Document({"q": 7}, doc_id=2), LEFT) == []

    def test_pair_orientation_is_left_right(self):
        joiner = BinaryStreamJoiner()
        joiner.process(Document({"q": 7}, doc_id=9), RIGHT)
        pairs = joiner.process(Document({"q": 7}, doc_id=1), LEFT)
        assert pairs == [BinaryJoinPair(1, 9)]

    def test_conflicts_respected_across_streams(self):
        joiner = BinaryStreamJoiner()
        joiner.process(Document({"q": 7, "u": "a"}, doc_id=1), LEFT)
        assert joiner.process(Document({"q": 7, "u": "b"}, doc_id=2), RIGHT) == []

    def test_invalid_side(self):
        joiner = BinaryStreamJoiner()
        with pytest.raises(ValueError, match="side"):
            joiner.process(Document({"a": 1}, doc_id=1), "T")

    def test_doc_id_required(self):
        with pytest.raises(ValueError, match="doc_id"):
            BinaryStreamJoiner().process(Document({"a": 1}), LEFT)

    def test_reset_clears_both_stores(self):
        joiner = BinaryStreamJoiner()
        joiner.process(Document({"a": 1}, doc_id=1), LEFT)
        joiner.process(Document({"b": 2}, doc_id=2), RIGHT)
        assert len(joiner) == 2
        joiner.reset()
        assert len(joiner) == 0
        assert joiner.process(Document({"a": 1}, doc_id=3), RIGHT) == []

    def test_overlapping_id_spaces_allowed(self):
        """R and S may number their documents independently."""
        joiner = BinaryStreamJoiner()
        joiner.process(Document({"a": 1}, doc_id=0), LEFT)
        pairs = joiner.process(Document({"a": 1}, doc_id=0), RIGHT)
        assert pairs == [BinaryJoinPair(0, 0)]


FACTORIES = [
    pytest.param(None, id="FPJ"),
    pytest.param(NestedLoopJoiner, id="NLJ"),
    pytest.param(HashJoiner, id="HBJ"),
]


class TestBinaryJoinWindow:
    @pytest.mark.parametrize("factory", FACTORIES)
    @given(
        left=document_lists(min_size=0, max_size=12),
        right=document_lists(min_size=0, max_size=12),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_equals_brute_force(self, factory, left, right):
        kwargs = {} if factory is None else {"store_factory": factory}
        assert binary_join_window(left, right, **kwargs) == (
            brute_force_binary_pairs(left, right)
        )

    @given(
        left=document_lists(min_size=0, max_size=10),
        right=document_lists(min_size=0, max_size=10),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_order_independent(self, left, right):
        """R-then-S equals interleaved equals S-then-R."""
        joiner = BinaryStreamJoiner()
        sequential: set[BinaryJoinPair] = set()
        for doc in left:
            sequential.update(joiner.process(doc, LEFT))
        for doc in right:
            sequential.update(joiner.process(doc, RIGHT))
        assert frozenset(sequential) == binary_join_window(left, right)

    def test_photon_scenario(self):
        """Queries joined with clicks via shared identifiers — without
        declaring which attribute is the key."""
        queries = [
            Document({"QueryId": "q1", "Terms": "cheap flights"}, doc_id=1),
            Document({"QueryId": "q2", "Terms": "pizza near me"}, doc_id=2),
        ]
        clicks = [
            Document({"QueryId": "q1", "AdId": "a9"}, doc_id=1),
            Document({"QueryId": "q3", "AdId": "a7"}, doc_id=2),
        ]
        pairs = binary_join_window(queries, clicks)
        assert pairs == frozenset({BinaryJoinPair(1, 1)})
