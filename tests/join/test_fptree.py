"""Unit tests for FP-tree construction (Section V-A, Fig. 4)."""

import pytest

from repro.core.document import AVPair, Document
from repro.join.fptree import FPTree
from repro.join.ordering import AttributeOrder


@pytest.fixture
def table1_tree(table1_documents) -> FPTree:
    return FPTree.build(table1_documents)


class TestFig4Structure:
    """The tree of the paper's Fig. 4, exactly."""

    def test_root_children_are_b_values(self, table1_tree):
        labels = set(table1_tree.root.children)
        assert labels == {AVPair("b", 7), AVPair("b", 8)}

    def test_b7_branch(self, table1_tree):
        b7 = table1_tree.root.children[AVPair("b", 7)]
        assert set(b7.children) == {AVPair("a", 3)}
        a3 = b7.children[AVPair("a", 3)]
        assert a3.doc_ids == [3]  # d3 ends at b:7 -> a:3
        c1 = a3.children[AVPair("c", 1)]
        assert c1.doc_ids == [1]  # d1 ends at b:7 -> a:3 -> c:1

    def test_b8_branch(self, table1_tree):
        b8 = table1_tree.root.children[AVPair("b", 8)]
        assert set(b8.children) == {AVPair("a", 3), AVPair("c", 2)}
        assert b8.children[AVPair("a", 3)].doc_ids == [2]
        assert b8.children[AVPair("c", 2)].doc_ids == [4]

    def test_prefix_sharing(self, table1_tree):
        """d1 and d3 share the b:7 -> a:3 path: 6 nodes total, not 9."""
        assert table1_tree.node_count == 6

    def test_doc_count(self, table1_tree):
        assert table1_tree.doc_count == 4
        assert len(table1_tree) == 4

    def test_header_table_links_equal_labels(self, table1_tree):
        a3_nodes = table1_tree.header_chain(AVPair("a", 3))
        assert len(a3_nodes) == 2
        assert all(node.label == AVPair("a", 3) for node in a3_nodes)

    def test_branch_ids_unique_per_terminal(self, table1_tree):
        ids = [
            node.branch_id
            for node in table1_tree.iter_nodes()
            if node.branch_id is not None
        ]
        assert len(ids) == len(set(ids)) == 4  # one branch per document path

    def test_path_pairs(self, table1_tree):
        b7 = table1_tree.root.children[AVPair("b", 7)]
        c1 = b7.children[AVPair("a", 3)].children[AVPair("c", 1)]
        assert c1.path_pairs() == [AVPair("b", 7), AVPair("a", 3), AVPair("c", 1)]


class TestInsertion:
    def test_insert_requires_doc_id(self):
        tree = FPTree(AttributeOrder(("a",)))
        with pytest.raises(ValueError, match="doc_id"):
            tree.insert(Document({"a": 1}))

    def test_identical_documents_share_terminal(self):
        tree = FPTree(AttributeOrder(("a", "b")))
        tree.insert(Document({"a": 1, "b": 2}, doc_id=1))
        tree.insert(Document({"a": 1, "b": 2}, doc_id=2))
        terminal = tree.root.children[AVPair("a", 1)].children[AVPair("b", 2)]
        assert terminal.doc_ids == [1, 2]
        assert tree.node_count == 2

    def test_stored_doc_ids(self, table1_tree):
        assert sorted(table1_tree.stored_doc_ids()) == [1, 2, 3, 4]

    def test_build_derives_order_when_missing(self, table1_documents):
        tree = FPTree.build(table1_documents)
        assert tree.order.attributes == ("b", "a", "c")

    def test_build_with_explicit_order(self, table1_documents):
        order = AttributeOrder(("c", "a", "b"))
        tree = FPTree.build(table1_documents, order)
        # now c-labelled nodes sit at the top for documents containing c
        assert AVPair("c", 1) in tree.root.children
        assert AVPair("c", 2) in tree.root.children


class TestUbiquitousPrefix:
    def test_empty_tree(self):
        assert FPTree(AttributeOrder(("a",))).ubiquitous_prefix_length() == 0

    def test_table1_has_one_ubiquitous_level(self, table1_tree):
        # 'b' appears in all four Table I documents — the paper's Fig. 5
        # walkthrough states exactly one level has this property
        assert table1_tree.ubiquitous_prefix_length() == 1
        assert table1_tree.ubiquitous_attributes() == ("b",)

    def test_no_ubiquitous_attribute(self):
        docs = [Document({"a": 1}, doc_id=1), Document({"b": 2}, doc_id=2)]
        assert FPTree.build(docs).ubiquitous_prefix_length() == 0

    def test_single_ubiquitous_attribute(self):
        docs = [
            Document({"flag": True, "x": 1}, doc_id=1),
            Document({"flag": False, "y": 2}, doc_id=2),
            Document({"flag": True}, doc_id=3),
        ]
        tree = FPTree.build(docs)
        assert tree.ubiquitous_prefix_length() == 1
        assert tree.ubiquitous_attributes() == ("flag",)

    def test_multiple_ubiquitous_attributes(self):
        docs = [
            Document({"f": True, "g": 1, "x": 1}, doc_id=1),
            Document({"f": False, "g": 2, "y": 2}, doc_id=2),
        ]
        tree = FPTree.build(docs)
        assert tree.ubiquitous_prefix_length() == 2

    def test_prefix_requires_order_head(self):
        """An attribute in all docs but ranked later gives no fast path."""
        order = AttributeOrder(("rare", "common"))
        tree = FPTree(order)
        tree.insert(Document({"common": 1}, doc_id=1))
        tree.insert(Document({"common": 2}, doc_id=2))
        # 'common' is ubiquitous but 'rare' (rank 0) is not in any doc
        assert tree.ubiquitous_prefix_length() == 0

    def test_prefix_shrinks_as_documents_arrive(self):
        docs = [Document({"f": 1, "x": 1}, doc_id=1)]
        tree = FPTree.build(docs)
        assert tree.ubiquitous_prefix_length() >= 1
        tree.insert(Document({"y": 9}, doc_id=2))  # lacks f
        assert tree.ubiquitous_prefix_length() == 0

    def test_attribute_document_count(self, table1_tree):
        assert table1_tree.attribute_document_count("b") == 4
        assert table1_tree.attribute_document_count("a") == 3
        assert table1_tree.attribute_document_count("c") == 2
        assert table1_tree.attribute_document_count("zz") == 0
