"""Stateful property testing of the sliding FP-tree joiner.

Hypothesis drives arbitrary interleavings of adds and probes against a
trivially correct model (a list of documents), checking after every
probe that the FP-tree with incremental eviction returns exactly the
model's answer.
"""

from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.core.document import Document
from repro.join.sliding import SlidingFPTreeJoiner
from tests.conftest import document_pairs

WINDOW = 5


class SlidingJoinerMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.joiner = SlidingFPTreeJoiner(WINDOW)
        self.model: list[Document] = []
        self.next_id = 0

    @rule(pairs=document_pairs())
    def add_document(self, pairs):
        doc = Document(pairs, doc_id=self.next_id)
        self.next_id += 1
        self.joiner.add(doc)
        self.model.append(doc)

    @rule(pairs=document_pairs())
    def probe_matches_model(self, pairs):
        probe = Document(pairs)
        visible = self.model[-(WINDOW - 1) :] if WINDOW > 1 else []
        expected = sorted(
            d.doc_id for d in visible if d.joinable(probe)
        )
        assert sorted(self.joiner.probe(probe)) == expected

    @rule()
    def reset_everything(self):
        self.joiner.reset()
        self.model.clear()

    @invariant()
    def size_is_bounded(self):
        assert len(self.joiner) <= WINDOW

    @invariant()
    def tree_statistics_consistent(self):
        tree = self.joiner.tree
        assert tree.doc_count == len(tree._terminals)
        # attribute counts must sum to the pairs of the stored documents
        stored = set(tree._terminals)
        expected_pairs = sum(
            len(d) for d in self.model if d.doc_id in stored
        )
        assert sum(tree._attr_doc_count.values()) == expected_pairs


TestSlidingJoinerStateful = SlidingJoinerMachine.TestCase
TestSlidingJoinerStateful.settings = settings(
    max_examples=40, stateful_step_count=30, deadline=None
)
