"""Structural invariants of the FP-tree under arbitrary insert/remove."""

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.document import Document
from repro.join.fptree import FPTree
from repro.join.ordering import AttributeOrder
from tests.conftest import document_lists


def _check_invariants(tree: FPTree, live_docs: list[Document]) -> None:
    # doc bookkeeping
    assert tree.doc_count == len(live_docs)
    assert sorted(tree.stored_doc_ids()) == sorted(d.doc_id for d in live_docs)

    # every stored document's path equals its ordered pair list
    for doc in live_docs:
        terminal = tree._terminals[doc.doc_id]
        assert terminal.path_pairs() == tree.order.sort_document(doc)
        assert doc.doc_id in terminal.doc_ids

    # attribute counts equal live content
    expected = Counter()
    for doc in live_docs:
        expected.update(doc.pairs.keys())
    assert tree._attr_doc_count == expected

    # node count equals reachable nodes; no empty leaves linger
    reachable = list(tree.iter_nodes())
    assert len(reachable) == tree.node_count
    for node in reachable:
        assert node.doc_ids or node.children, "dangling empty leaf"

    # header chains cover exactly the reachable nodes per label
    by_label = Counter(node.label for node in reachable)
    for label, count in by_label.items():
        assert len(tree.header_chain(label)) == count
    assert set(tree.header) == set(by_label)


@given(docs=document_lists(min_size=1, max_size=25))
@settings(max_examples=50, deadline=None)
def test_property_invariants_after_inserts(docs):
    tree = FPTree(AttributeOrder.from_documents(docs))
    for doc in docs:
        tree.insert(doc)
    _check_invariants(tree, docs)


@given(
    docs=document_lists(min_size=2, max_size=25),
    removals=st.data(),
)
@settings(max_examples=50, deadline=None)
def test_property_invariants_after_mixed_removals(docs, removals):
    tree = FPTree(AttributeOrder.from_documents(docs))
    for doc in docs:
        tree.insert(doc)
    to_remove = removals.draw(
        st.lists(
            st.sampled_from([d.doc_id for d in docs]),
            unique=True,
            max_size=len(docs),
        )
    )
    for doc_id in to_remove:
        assert tree.remove(doc_id)
    live = [d for d in docs if d.doc_id not in set(to_remove)]
    _check_invariants(tree, live)


@given(docs=document_lists(min_size=1, max_size=15))
@settings(max_examples=40, deadline=None)
def test_property_reinsertion_restores_structure(docs):
    """Remove everything, reinsert everything: node-for-node identical
    shape (counts, labels, doc placement) as a freshly built tree."""
    order = AttributeOrder.from_documents(docs)
    tree = FPTree(order)
    for doc in docs:
        tree.insert(doc)
    for doc in docs:
        tree.remove(doc.doc_id)
    for doc in docs:
        tree.insert(doc)
    fresh = FPTree(order)
    for doc in docs:
        fresh.insert(doc)

    def shape(t):
        return sorted(
            (
                tuple(p.sort_key() for p in node.path_pairs()),
                tuple(sorted(node.doc_ids)),
            )
            for node in t.iter_nodes()
        )

    assert shape(tree) == shape(fresh)
    assert tree.node_count == fresh.node_count
