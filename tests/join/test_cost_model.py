"""Tests for the NLJ/HBJ cost model — predictions vs measurements."""

import pytest

from repro.core.document import Document
from repro.core.profile import profile_documents
from repro.data.nobench import NoBenchGenerator
from repro.data.serverlogs import ServerLogGenerator
from repro.join.cost import (
    expected_shared_incidences,
    measure_nlj_hbj_winner,
    predict_nlj_hbj_winner,
    profile_and_predict,
    shared_incidences_of,
)


class TestSharedIncidences:
    def test_identical_documents(self):
        docs = [Document({"a": 1}, doc_id=i) for i in range(4)]
        # one pair with share 1.0 -> sum of squares = 1.0
        assert shared_incidences_of(docs) == pytest.approx(1.0)

    def test_fully_disjoint_documents(self):
        docs = [Document({f"a{i}": i}, doc_id=i) for i in range(10)]
        # ten pairs, each share 0.1 -> 10 * 0.01
        assert shared_incidences_of(docs) == pytest.approx(0.1)

    def test_rwdata_exceeds_nbdata(self):
        rw = ServerLogGenerator(seed=2).documents(1000)
        nb = NoBenchGenerator(seed=2).documents(1000)
        assert shared_incidences_of(rw) > shared_incidences_of(nb)

    def test_profile_approximation_in_ballpark(self):
        docs = ServerLogGenerator(seed=3).documents(800)
        exact = shared_incidences_of(docs)
        approx = expected_shared_incidences(profile_documents(docs))
        # the profile keeps only the top pair exactly; the approximation
        # must at least preserve the order of magnitude
        assert approx == pytest.approx(exact, rel=0.9)
        assert approx > 0.0


class TestPrediction:
    def test_predicts_nlj_on_interconnected_data(self):
        docs = ServerLogGenerator(seed=4).documents(1500)
        assert predict_nlj_hbj_winner(docs) == "NLJ"

    def test_predicts_hbj_on_diverse_data(self):
        docs = NoBenchGenerator(seed=4).documents(1500)
        assert predict_nlj_hbj_winner(docs) == "HBJ"

    @pytest.mark.parametrize(
        "generator_cls", [ServerLogGenerator, NoBenchGenerator],
        ids=["rwData", "nbData"],
    )
    def test_prediction_matches_measurement(self, generator_cls):
        """The model's call agrees with actual wall-clock on both
        datasets — the Fig. 11c/11d crossover, predicted analytically."""
        docs = generator_cls(seed=7).documents(2500)
        assert predict_nlj_hbj_winner(docs) == measure_nlj_hbj_winner(docs)

    def test_report_shape(self):
        docs = ServerLogGenerator(seed=5).documents(300)
        report = profile_and_predict(docs)
        assert report["documents"] == 300
        assert report["predicted_winner"] in ("NLJ", "HBJ")
        assert report["shared_incidences"] > 0
