"""Batch kernels vs the per-document streaming loop — exact equivalence.

Every joiner's ``probe_batch``/``insert_batch``/``process_batch`` must
produce exactly what the equivalent sequence of ``probe``/``add`` calls
produces, on the same stored state — the kernels are a faster path, not
a different algorithm.  Checked over randomized workloads for all three
joiners, plus the contract edges (stored-state-only probe semantics,
pre-built batch reuse, interner mismatch).
"""

import random

import pytest

from repro.core.columnar import ColumnarBatch
from repro.core.document import Document
from repro.join.fptree_join import FPTreeJoiner
from repro.join.hash_join import HashJoiner
from repro.join.nested_loop import NestedLoopJoiner
from repro.join.ordering import AttributeOrder

ATTRIBUTES = [f"a{i}" for i in range(10)]
VALUES = [0, 1, 2, "x", "y", True]


def make_documents(rng, count, start_id=0):
    docs = []
    for i in range(count):
        pairs = {
            attribute: rng.choice(VALUES)
            for attribute in rng.sample(ATTRIBUTES, rng.randrange(1, 5))
        }
        docs.append(Document(pairs, doc_id=start_id + i))
    return docs


def make_order(documents):
    return AttributeOrder.from_documents(documents)


JOINERS = {
    "NLJ": lambda order: NestedLoopJoiner(order=order),
    "HBJ": lambda order: HashJoiner(order=order),
    "FPJ": lambda order: FPTreeJoiner(order=order),
}


@pytest.mark.parametrize("name", sorted(JOINERS))
class TestBatchEquivalence:
    def test_probe_batch_equals_probe_loop(self, name):
        rng = random.Random(11)
        for trial in range(8):
            stored = make_documents(rng, 40)
            probes = make_documents(rng, 30, start_id=1000)
            order = make_order(stored + probes)
            reference, batched = JOINERS[name](order), JOINERS[name](order)
            for doc in stored:
                reference.add(doc)
                batched.add(doc)
            expected = [sorted(reference.probe(doc)) for doc in probes]
            got = [sorted(partners) for partners in batched.probe_batch(probes)]
            assert got == expected

    def test_probe_batch_sees_stored_state_only(self, name):
        # contract: batch probing never matches within the probe batch
        doc_a = Document({"k": 1}, doc_id=0)
        doc_b = Document({"k": 1}, doc_id=1)
        joiner = JOINERS[name](make_order([doc_a, doc_b]))
        results = joiner.probe_batch([doc_a, doc_b])
        assert results == [[], []]

    def test_process_batch_equals_interleaved_loop(self, name):
        rng = random.Random(13)
        for trial in range(8):
            docs = make_documents(rng, 60)
            order = make_order(docs)
            reference, batched = JOINERS[name](order), JOINERS[name](order)
            expected = []
            for doc in docs:
                expected.append(sorted(reference.probe(doc)))
                reference.add(doc)
            got = [sorted(p) for p in batched.process_batch(docs)]
            assert got == expected
            # stored state converged identically: future probes agree
            followups = make_documents(rng, 10, start_id=5000)
            for doc in followups:
                assert sorted(batched.probe(doc)) == sorted(reference.probe(doc))

    def test_insert_batch_matches_add_loop(self, name):
        rng = random.Random(17)
        docs = make_documents(rng, 40)
        probes = make_documents(rng, 15, start_id=2000)
        order = make_order(docs + probes)
        reference, batched = JOINERS[name](order), JOINERS[name](order)
        for doc in docs:
            reference.add(doc)
        batched.insert_batch(docs)
        assert len(batched) == len(reference) == len(docs)
        for doc in probes:
            assert sorted(batched.probe(doc)) == sorted(reference.probe(doc))

    def test_mixed_batch_and_per_document_usage(self, name):
        rng = random.Random(19)
        docs = make_documents(rng, 50)
        order = make_order(docs)
        reference, mixed = JOINERS[name](order), JOINERS[name](order)
        expected = []
        for doc in docs:
            expected.append(sorted(reference.probe(doc)))
            reference.add(doc)
        got = [sorted(p) for p in mixed.process_batch(docs[:20])]
        for doc in docs[20:30]:  # interleave the per-document path
            got.append(sorted(mixed.probe(doc)))
            mixed.add(doc)
        got.extend(sorted(p) for p in mixed.process_batch(docs[30:]))
        assert got == expected

    def test_reset_clears_batch_state(self, name):
        rng = random.Random(23)
        docs = make_documents(rng, 20)
        joiner = JOINERS[name](make_order(docs))
        joiner.process_batch(docs)
        joiner.reset()
        assert len(joiner) == 0
        assert joiner.probe_batch(docs) == [[] for _ in docs]


class TestKernelBatchInputs:
    def test_prebuilt_batch_is_accepted(self):
        rng = random.Random(29)
        docs = make_documents(rng, 30)
        order = make_order(docs)
        reference, joiner = HashJoiner(order=order), HashJoiner(order=order)
        batch = ColumnarBatch.from_documents(docs, joiner._interner)
        expected = [sorted(p) for p in reference.process_batch(docs)]
        assert [sorted(p) for p in joiner.process_batch(batch)] == expected

    def test_foreign_interner_batch_is_rejected(self):
        from repro.core.interning import PairInterner

        docs = make_documents(random.Random(31), 5)
        joiner = HashJoiner(order=make_order(docs))
        foreign = ColumnarBatch.from_documents(docs, PairInterner())
        with pytest.raises(ValueError, match="interner"):
            joiner.probe_batch(foreign)

    def test_views_invalidated_by_per_document_insert(self):
        # HBJ amortizes postings views across batches; a per-document
        # add in between must invalidate them, not leak stale state
        docs = make_documents(random.Random(37), 20)
        order = make_order(docs)
        joiner = HashJoiner(order=order)
        joiner.process_batch(docs[:10])
        late = Document({"zz": "late", **docs[0].pairs}, doc_id=999)
        joiner.add(late)
        probe = Document(docs[0].pairs, doc_id=1234)
        assert 999 in joiner.probe_batch([probe])[0]
