"""Unit tests for the global attribute ordering (Section V-A, Table I)."""

import pytest

from repro.core.document import AVPair, Document
from repro.join.ordering import AttributeOrder


class TestFromDocuments:
    def test_table1_order(self, table1_documents):
        """The paper's example: b -> a -> c."""
        order = AttributeOrder.from_documents(table1_documents)
        assert order.attributes == ("b", "a", "c")

    def test_frequency_dominates(self):
        docs = [Document({"x": 1, "y": 1}), Document({"y": 2})]
        order = AttributeOrder.from_documents(docs)
        assert order.attributes[0] == "y"

    def test_tie_broken_by_fewer_distinct_values(self):
        # p and q both appear in 2 docs; p has 1 distinct value, q has 2
        docs = [Document({"p": 1, "q": 1}), Document({"p": 1, "q": 2})]
        order = AttributeOrder.from_documents(docs)
        assert order.attributes == ("p", "q")

    def test_final_tie_broken_by_name(self):
        docs = [Document({"beta": 1, "alpha": 1})]
        order = AttributeOrder.from_documents(docs)
        assert order.attributes == ("alpha", "beta")

    def test_empty_sample(self):
        order = AttributeOrder.from_documents([])
        assert order.attributes == ()


class TestRankAndSort:
    def test_rank_of_known_attribute(self):
        order = AttributeOrder(("b", "a", "c"))
        assert order.rank("b") == 0
        assert order.rank("c") == 2

    def test_unknown_attributes_rank_last(self):
        order = AttributeOrder(("b", "a"))
        assert order.rank("zz") == 2
        assert order.rank("aa") == 2

    def test_unknown_attributes_ordered_by_name(self):
        order = AttributeOrder(())
        doc = Document({"zeta": 1, "alpha": 2})
        assert [p.attribute for p in order.sort_document(doc)] == ["alpha", "zeta"]

    def test_sort_document_table1(self, table1_documents):
        """Right column of Table I: d1 reordered to (b:7, a:3, c:1)."""
        order = AttributeOrder.from_documents(table1_documents)
        ordered = order.sort_document(table1_documents[0])
        assert ordered == [AVPair("b", 7), AVPair("a", 3), AVPair("c", 1)]

    def test_contains_and_len(self):
        order = AttributeOrder(("a", "b"))
        assert "a" in order
        assert "z" not in order
        assert len(order) == 2

    def test_duplicate_attributes_rejected(self):
        with pytest.raises(ValueError, match="duplicates"):
            AttributeOrder(("a", "a"))

    def test_order_is_total_and_deterministic(self):
        order = AttributeOrder(("b",))
        doc = Document({"b": 1, "x": 2, "a": 3})
        names = [p.attribute for p in order.sort_document(doc)]
        assert names == ["b", "a", "x"]
