"""Tests for the sliding-window extension (FP-tree eviction)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.document import AVPair, Document
from repro.data.serverlogs import ServerLogGenerator
from repro.exceptions import WindowError
from repro.join.fptree import FPTree
from repro.join.fptree_join import fptree_join
from repro.join.ordering import AttributeOrder
from repro.join.sliding import (
    SlidingFPTreeJoiner,
    TimeSlidingFPTreeJoiner,
    brute_force_sliding_pairs,
    sliding_join_stream,
)
from tests.conftest import document_lists


class TestFPTreeRemoval:
    def test_remove_returns_false_for_unknown(self):
        tree = FPTree(AttributeOrder(("a",)))
        assert tree.remove(99) is False

    def test_remove_single_document_empties_tree(self):
        tree = FPTree(AttributeOrder(("a", "b")))
        tree.insert(Document({"a": 1, "b": 2}, doc_id=1))
        assert tree.remove(1) is True
        assert tree.doc_count == 0
        assert tree.node_count == 0
        assert tree.root.children == {}
        assert tree.header == {}

    def test_removed_document_no_longer_joins(self):
        tree = FPTree(AttributeOrder(("a",)))
        tree.insert(Document({"a": 1}, doc_id=1))
        tree.insert(Document({"a": 1}, doc_id=2))
        tree.remove(1)
        assert fptree_join(tree, Document({"a": 1})) == [2]

    def test_shared_prefix_survives_partial_removal(self, table1_documents):
        tree = FPTree.build(table1_documents)
        tree.remove(1)  # d1 = {b:7, a:3, c:1}; d3 still needs b:7 -> a:3
        assert fptree_join(tree, Document({"b": 7, "a": 3})) == [3]
        b7 = tree.root.children[AVPair("b", 7)]
        assert AVPair("a", 3) in b7.children
        assert AVPair("c", 1) not in b7.children[AVPair("a", 3)].children

    def test_attribute_counts_updated(self, table1_documents):
        tree = FPTree.build(table1_documents)
        tree.remove(1)
        assert tree.attribute_document_count("c") == 1
        assert tree.attribute_document_count("b") == 3

    def test_ubiquitous_prefix_can_grow_after_removal(self):
        docs = [
            Document({"f": 1, "x": 1}, doc_id=1),
            Document({"y": 2}, doc_id=2),  # lacks f
            Document({"f": 2}, doc_id=3),
        ]
        tree = FPTree.build(docs)
        assert tree.ubiquitous_prefix_length() == 0
        tree.remove(2)
        assert tree.ubiquitous_prefix_length() == 1

    def test_header_chain_consistent_after_removals(self):
        order = AttributeOrder(("a", "b"))
        tree = FPTree(order)
        tree.insert(Document({"a": 1, "b": 1}, doc_id=1))
        tree.insert(Document({"a": 2, "b": 1}, doc_id=2))
        tree.insert(Document({"a": 3, "b": 1}, doc_id=3))
        assert len(tree.header_chain(AVPair("b", 1))) == 3
        tree.remove(2)  # middle of the b:1 chain
        chain = tree.header_chain(AVPair("b", 1))
        assert len(chain) == 2
        tree.insert(Document({"a": 4, "b": 1}, doc_id=4))
        assert len(tree.header_chain(AVPair("b", 1))) == 3

    def test_remove_head_and_tail_of_chain(self):
        order = AttributeOrder(("a", "b"))
        tree = FPTree(order)
        for i in range(1, 4):
            tree.insert(Document({"a": i, "b": 1}, doc_id=i))
        tree.remove(1)  # head
        tree.remove(3)  # tail
        assert len(tree.header_chain(AVPair("b", 1))) == 1
        tree.insert(Document({"a": 9, "b": 1}, doc_id=9))
        assert len(tree.header_chain(AVPair("b", 1))) == 2

    def test_duplicate_doc_id_rejected(self):
        tree = FPTree(AttributeOrder(("a",)))
        tree.insert(Document({"a": 1}, doc_id=1))
        with pytest.raises(ValueError, match="already stored"):
            tree.insert(Document({"a": 2}, doc_id=1))

    def test_insert_after_remove_reuses_id(self):
        tree = FPTree(AttributeOrder(("a",)))
        tree.insert(Document({"a": 1}, doc_id=1))
        tree.remove(1)
        tree.insert(Document({"a": 2}, doc_id=1))
        assert tree.doc_count == 1

    @given(docs=document_lists(min_size=1, max_size=20))
    @settings(max_examples=40, deadline=None)
    def test_property_insert_remove_all_restores_empty_tree(self, docs):
        tree = FPTree(AttributeOrder.from_documents(docs))
        for doc in docs:
            tree.insert(doc)
        for doc in docs:
            assert tree.remove(doc.doc_id)
        assert tree.doc_count == 0
        assert tree.node_count == 0
        assert tree.header == {}
        assert tree._attr_doc_count == {}

    @given(
        docs=document_lists(min_size=4, max_size=20),
        keep=st.integers(min_value=1, max_value=3),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_partial_removal_equals_fresh_tree(self, docs, keep):
        """Removing a prefix leaves a tree equivalent to building from
        the suffix: same probe results for every document."""
        order = AttributeOrder.from_documents(docs)
        incremental = FPTree(order)
        for doc in docs:
            incremental.insert(doc)
        for doc in docs[:-keep]:
            incremental.remove(doc.doc_id)
        fresh = FPTree(order)
        for doc in docs[-keep:]:
            fresh.insert(doc)
        for doc in docs:
            assert sorted(fptree_join(incremental, doc)) == sorted(
                fptree_join(fresh, doc)
            )


class TestSlidingJoiner:
    def test_partner_expires_after_window_size_adds(self):
        """W = 2 means the probe joins exactly the one previous document."""
        joiner = SlidingFPTreeJoiner(window_size=2)
        joiner.add(Document({"a": 1}, doc_id=1))
        assert joiner.probe(Document({"a": 1})) == [1]
        joiner.add(Document({"a": 1}, doc_id=2))
        # doc 1 is now 2 positions back -> outside the extent
        assert joiner.probe(Document({"a": 1})) == [2]

    def test_window_size_validation(self):
        with pytest.raises(WindowError):
            SlidingFPTreeJoiner(window_size=0)

    def test_len_is_capped_at_window(self):
        joiner = SlidingFPTreeJoiner(window_size=3)
        for i in range(10):
            joiner.add(Document({"a": i}, doc_id=i))
        assert len(joiner) == 3

    def test_reset(self):
        joiner = SlidingFPTreeJoiner(window_size=3)
        joiner.add(Document({"a": 1}, doc_id=1))
        joiner.reset()
        assert len(joiner) == 0
        assert joiner.probe(Document({"a": 1})) == []

    def test_add_requires_doc_id(self):
        with pytest.raises(ValueError):
            SlidingFPTreeJoiner(window_size=2).add(Document({"a": 1}))

    @given(
        docs=document_lists(min_size=1, max_size=30),
        window=st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_sliding_join_is_exact(self, docs, window):
        pairs = sliding_join_stream(SlidingFPTreeJoiner(window), docs)
        assert frozenset(pairs) == brute_force_sliding_pairs(docs, window)

    def test_exact_on_generated_stream(self):
        docs = ServerLogGenerator(seed=8).documents(300)
        pairs = sliding_join_stream(SlidingFPTreeJoiner(50), docs)
        assert frozenset(pairs) == brute_force_sliding_pairs(docs, 50)

    def test_sliding_window_spans_tumbling_boundaries(self):
        """The motivation for sliding windows: neighbours in the stream
        join even when a tumbling boundary would separate them."""
        from repro.join.base import JoinPair

        docs = [
            Document({"k": 1}, doc_id=0),
            Document({"z": 5}, doc_id=1),
            Document({"k": 1}, doc_id=2),
        ]
        pairs = sliding_join_stream(SlidingFPTreeJoiner(3), docs)
        assert JoinPair(0, 2) in pairs


class TestTimeSlidingJoiner:
    def test_time_based_expiry(self):
        joiner = TimeSlidingFPTreeJoiner(window_length=10.0)
        joiner.add(Document({"a": 1}, doc_id=1), timestamp=0.0)
        assert joiner.probe(Document({"a": 1}), timestamp=5.0) == [1]
        assert joiner.probe(Document({"a": 1}), timestamp=10.5) == []

    def test_boundary_is_exclusive_at_horizon(self):
        joiner = TimeSlidingFPTreeJoiner(window_length=10.0)
        joiner.add(Document({"a": 1}, doc_id=1), timestamp=0.0)
        # at exactly t = window_length the document has expired
        assert joiner.probe(Document({"a": 1}), timestamp=10.0) == []

    def test_non_monotone_timestamps_rejected(self):
        joiner = TimeSlidingFPTreeJoiner(window_length=10.0)
        joiner.add(Document({"a": 1}, doc_id=1), timestamp=5.0)
        with pytest.raises(WindowError, match="non-decreasing"):
            joiner.add(Document({"a": 2}, doc_id=2), timestamp=4.0)

    def test_window_length_validation(self):
        with pytest.raises(WindowError):
            TimeSlidingFPTreeJoiner(window_length=0)

    def test_reset_clears_clock(self):
        joiner = TimeSlidingFPTreeJoiner(window_length=10.0)
        joiner.add(Document({"a": 1}, doc_id=1), timestamp=100.0)
        joiner.reset()
        joiner.add(Document({"a": 2}, doc_id=2), timestamp=0.0)  # no error
        assert len(joiner) == 1

    def test_matches_count_based_reference(self):
        """With unit-spaced timestamps, time window W == count window W."""
        docs = ServerLogGenerator(seed=9).documents(150)
        window = 25
        joiner = TimeSlidingFPTreeJoiner(window_length=float(window))
        pairs = set()
        from repro.join.base import JoinPair

        for i, doc in enumerate(docs):
            for partner in joiner.probe(doc, timestamp=float(i)):
                pairs.add(JoinPair.of(partner, doc.doc_id))
            joiner.add(doc, timestamp=float(i))
        assert frozenset(pairs) == brute_force_sliding_pairs(docs, window)
