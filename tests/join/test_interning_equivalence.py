"""Dictionary-encoded joiners are result-identical to the references.

The interned hot paths (the ``interned=True`` defaults of NLJ / HBJ /
FPJ) must agree with the string-keyed seed implementations
(``interned=False``) *probe for probe* — not just on the window's final
pair set — across randomized multi-window streams that deliberately mix
the value types interning must keep apart (``1`` vs ``"1"``) and
together (``1`` vs ``True`` vs ``1.0``).
"""

import random

import pytest

from repro.core.document import Document
from repro.join.base import brute_force_pairs, join_result_set
from repro.join.fptree_join import FPTreeJoiner
from repro.join.hash_join import HashJoiner
from repro.join.nested_loop import NestedLoopJoiner
from repro.join.ordering import AttributeOrder

#: values sharing an interned id (compare equal) plus lookalikes that
#: must stay distinct — the adversarial inputs for dictionary encoding
TRICKY_VALUES = [1, "1", True, 0, "0", False, 1.0, "on", "off", 2, "2"]

ATTRIBUTES = [f"a{i}" for i in range(12)]


def generate_windows(seed: int, windows: int = 3, size: int = 60):
    """A seeded stream of document windows with adversarial values."""
    rng = random.Random(seed)
    doc_id = 0
    stream = []
    for _ in range(windows):
        window = []
        for _ in range(size):
            attrs = rng.sample(ATTRIBUTES, rng.randint(2, 6))
            pairs = {attr: rng.choice(TRICKY_VALUES) for attr in attrs}
            window.append(Document(pairs, doc_id=doc_id))
            doc_id += 1
        stream.append(window)
    return stream


JOINER_FACTORIES = [
    pytest.param(lambda order, interned: NestedLoopJoiner(interned=interned), id="NLJ"),
    pytest.param(lambda order, interned: HashJoiner(interned=interned), id="HBJ"),
    pytest.param(
        lambda order, interned: FPTreeJoiner(order, interned=interned), id="FPJ"
    ),
    pytest.param(
        lambda order, interned: FPTreeJoiner(
            order, interned=interned, use_fast_path=False
        ),
        id="FPJ-no-fast-path",
    ),
]


@pytest.mark.parametrize("make", JOINER_FACTORIES)
@pytest.mark.parametrize("seed", [11, 23, 42])
def test_interned_matches_plain_probe_for_probe(make, seed):
    windows = generate_windows(seed)
    order = AttributeOrder.from_documents(windows[0])
    interned = make(order, True)
    plain = make(order, False)
    for window in windows:
        for doc in window:
            assert sorted(interned.probe(doc)) == sorted(plain.probe(doc)), doc.pairs
            interned.add(doc)
            plain.add(doc)
        assert len(interned) == len(plain)
        # The dictionary survives the window reset; results must not.
        interned.reset()
        plain.reset()


@pytest.mark.parametrize("make", JOINER_FACTORIES)
@pytest.mark.parametrize("seed", [11, 23, 42])
def test_interned_joiner_is_exact(make, seed):
    """Belt and braces: the interned joiners against brute force."""
    for window in generate_windows(seed, windows=2, size=40):
        order = AttributeOrder.from_documents(window)
        joiner = make(order, True)
        assert join_result_set(joiner, window) == brute_force_pairs(window)


def test_mixed_type_semantics_end_to_end():
    """1 joins True but conflicts with nothing it merely resembles."""
    stored_int = Document({"k": 1, "x": "s"}, doc_id=0)
    stored_str = Document({"k": "1", "y": "t"}, doc_id=1)
    probe = Document({"k": True, "x": "s"})
    for joiner in (NestedLoopJoiner(), HashJoiner(), FPTreeJoiner()):
        joiner.add(stored_int)
        joiner.add(stored_str)
        # True == 1, so the probe shares k with doc 0 only; "1" differs,
        # which is a conflict on k with doc 1.
        assert joiner.probe(probe) == [0]
