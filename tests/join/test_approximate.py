"""Tests for the Bloom filter and the approximate joiner."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.document import Document
from repro.join.approximate import ApproximateJoiner, BloomFilter, measure_recall
from repro.join.base import brute_force_pairs, join_window
from repro.data.serverlogs import ServerLogGenerator


class TestBloomFilter:
    def test_added_items_always_found(self):
        bloom = BloomFilter(capacity=100)
        for i in range(100):
            bloom.add(("attr", i))
        assert all(("attr", i) in bloom for i in range(100))

    def test_empty_filter_contains_nothing(self):
        bloom = BloomFilter(capacity=100)
        assert ("attr", 1) not in bloom

    def test_false_positive_rate_near_design(self):
        bloom = BloomFilter(capacity=2000, error_rate=0.01)
        for i in range(2000):
            bloom.add(("in", i))
        false_positives = sum(1 for i in range(10_000) if ("out", i) in bloom)
        assert false_positives / 10_000 < 0.05  # generous margin over 1%

    def test_clear(self):
        bloom = BloomFilter(capacity=10)
        bloom.add("x")
        bloom.clear()
        assert "x" not in bloom
        assert bloom.item_count == 0

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            BloomFilter(capacity=0)
        with pytest.raises(ValueError):
            BloomFilter(capacity=10, error_rate=1.5)

    @given(items=st.lists(st.integers(), max_size=200))
    @settings(max_examples=30, deadline=None)
    def test_property_no_false_negatives(self, items):
        bloom = BloomFilter(capacity=max(1, len(items)))
        for item in items:
            bloom.add(item)
        assert all(item in bloom for item in items)


class TestApproximateJoiner:
    def test_full_sample_rate_is_exact(self):
        docs = ServerLogGenerator(seed=3).documents(200)
        pairs = frozenset(join_window(ApproximateJoiner(sample_rate=1.0), docs))
        assert pairs == brute_force_pairs(docs)

    def test_results_are_subset_of_truth(self):
        docs = ServerLogGenerator(seed=3).documents(300)
        approx = frozenset(
            join_window(ApproximateJoiner(sample_rate=0.3, seed=1), docs)
        )
        assert approx <= brute_force_pairs(docs)

    def test_recall_tracks_sample_rate(self):
        docs = ServerLogGenerator(seed=4).documents(400)
        recall, _, exact = measure_recall(docs, sample_rate=0.5, seed=2)
        assert exact > 0
        assert 0.3 < recall < 0.7  # ~0.5 expected

    def test_bloom_filter_rejects_unmatchable_probes(self):
        joiner = ApproximateJoiner(sample_rate=1.0)
        joiner.add(Document({"a": 1}, doc_id=1))
        assert joiner.probe(Document({"zz": 99})) == []
        assert joiner.filtered_probes == 1

    def test_estimate_is_unbiased_shape(self):
        joiner = ApproximateJoiner(sample_rate=0.5, seed=7)
        for i in range(200):
            joiner.add(Document({"k": 1, "u": i}, doc_id=i))
        found = joiner.probe(Document({"k": 1}))
        assert joiner.last_estimate == pytest.approx(len(found) / 0.5)
        # ~200 true partners; the estimate should be in the ballpark
        assert 100 <= joiner.last_estimate <= 300

    def test_reset(self):
        joiner = ApproximateJoiner(sample_rate=1.0)
        joiner.add(Document({"a": 1}, doc_id=1))
        joiner.reset()
        assert len(joiner) == 0
        assert joiner.probe(Document({"a": 1})) == []

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            ApproximateJoiner(sample_rate=0.0)
        with pytest.raises(ValueError):
            ApproximateJoiner(sample_rate=1.5)

    def test_add_requires_doc_id(self):
        with pytest.raises(ValueError):
            ApproximateJoiner().add(Document({"a": 1}))

    def test_deterministic_given_seed(self):
        docs = ServerLogGenerator(seed=5).documents(150)
        first = join_window(ApproximateJoiner(0.4, seed=9), docs)
        second = join_window(ApproximateJoiner(0.4, seed=9), docs)
        assert first == second
