"""Soak runs under *sustained* fault plans.

The one-shot chaos suite (``test_chaos.py``) injects a fault and checks
one recovery; these cases use the soak driver to hold fault pressure on
the topology for a whole capped run and assert the safety rails that
only matter in aggregate:

* the dead-letter queue's retained-entry bound holds while its total
  keeps counting (a soak must not let quarantine storage grow with the
  fault count);
* worker restart budgets exhaust and either abort
  (:class:`~repro.exceptions.WorkerCrashError`) or degrade to inline
  execution, mid-soak, exactly as they do in a single-window run.

Every case caps wall clock via ``max_seconds``/``max_windows`` so the
suite stays inside the chaos-suite timeout.
"""

import pytest

from repro.exceptions import WorkerCrashError
from repro.faults import FaultPlan
from repro.soak import SoakConfig, run_soak
from repro.streaming.recovery import RestartPolicy
from repro.topology import messages as msg

pytestmark = pytest.mark.chaos

#: zero-backoff policy so restart loops do not slow the suite down
FAST_RESTART = RestartPolicy(
    max_restarts_per_window=3, backoff_base_s=0.0, jitter=0.0
)


def _soak_config(**overrides):
    defaults = dict(
        workload="zipf",
        seed=13,
        m=4,
        initial_rate=100.0,
        window_seconds=0.3,
        epoch_windows=2,
        max_windows=6,
        max_seconds=30.0,
        stop_at_saturation=False,
    )
    defaults.update(overrides)
    return SoakConfig(**defaults)


class TestSustainedDeadLetterPressure:
    def test_retained_entries_bounded_while_total_grows(self):
        """30 poison tuples, limit 8: total counts 30, storage holds 8."""
        plan = FaultPlan().raise_every(
            msg.JOINER, every=4, count=30, stream=msg.ASSIGNED
        )
        report = run_soak(
            _soak_config(
                dead_letters=True,
                dead_letter_limit=8,
                fault_plan=plan,
            )
        )
        assert report.dead_letters == 30
        assert report.dead_letters_retained == 8
        # the run itself stays healthy: faults must not leak memory or
        # reset counters
        assert report.obs_monotonic
        assert report.windows == 6

    def test_unbounded_limit_retains_everything(self):
        plan = FaultPlan().raise_every(
            msg.JOINER, every=10, count=12, stream=msg.ASSIGNED
        )
        report = run_soak(
            _soak_config(
                dead_letters=True,
                dead_letter_limit=None,
                fault_plan=plan,
            )
        )
        assert report.dead_letters == 12
        assert report.dead_letters_retained == 12

    def test_transient_faults_heal_without_quarantine(self):
        """Non-sticky rules + a retry budget: sustained pressure, no loss."""
        plan = FaultPlan().raise_every(
            msg.JOINER, every=7, count=10, stream=msg.ASSIGNED, sticky=False
        )
        report = run_soak(
            _soak_config(max_retries=1, dead_letters=True, fault_plan=plan)
        )
        assert report.dead_letters == 0
        assert report.obs_monotonic

    @pytest.mark.parallel
    def test_worker_side_quarantine_over_pipe_transport(self):
        plan = FaultPlan().raise_every(
            msg.JOINER, every=6, count=4, stream=msg.ASSIGNED
        )
        report = run_soak(
            _soak_config(
                backend="parallel",
                transport="pipe",
                workers=2,
                dead_letters=True,
                dead_letter_limit=3,
                fault_plan=plan,
                max_windows=4,
            )
        )
        # each worker runtime counts its own deliveries, so the plan
        # fires per worker; the retained bound still holds globally
        assert report.dead_letters >= 4
        assert report.dead_letters_retained == 3
        assert report.obs_monotonic


class TestRestartBudgetUnderSoak:
    @pytest.mark.parallel
    def test_sustained_kills_within_budget_recover(self):
        plan = (
            FaultPlan()
            .kill_worker(0, after_batches=1, incarnation=0)
            .kill_worker(0, after_batches=1, incarnation=1)
        )
        report = run_soak(
            _soak_config(
                backend="parallel",
                transport="pipe",
                workers=2,
                restart_policy=FAST_RESTART,
                fault_plan=plan,
                max_windows=4,
            )
        )
        assert report.worker_restarts == 2
        assert report.degraded_workers == 0
        assert report.obs_monotonic

    @pytest.mark.parallel
    def test_budget_exhaustion_aborts_the_soak(self):
        plan = (
            FaultPlan()
            .kill_worker(0, after_batches=0, incarnation=0)
            .kill_worker(0, after_batches=0, incarnation=1)
        )
        with pytest.raises(WorkerCrashError) as err:
            run_soak(
                _soak_config(
                    backend="parallel",
                    transport="pipe",
                    workers=2,
                    restart_policy=RestartPolicy(
                        max_restarts_per_window=1,
                        backoff_base_s=0.0,
                        jitter=0.0,
                    ),
                    fault_plan=plan,
                    max_windows=4,
                )
            )
        assert "restart budget" in str(err.value)

    @pytest.mark.parallel
    def test_budget_exhaustion_degrades_and_soak_continues(self):
        plan = (
            FaultPlan()
            .kill_worker(0, after_batches=0, incarnation=0)
            .kill_worker(0, after_batches=0, incarnation=1)
        )
        report = run_soak(
            _soak_config(
                backend="parallel",
                transport="pipe",
                workers=2,
                restart_policy=RestartPolicy(
                    max_restarts_per_window=1,
                    backoff_base_s=0.0,
                    jitter=0.0,
                    degrade=True,
                ),
                fault_plan=plan,
                max_windows=4,
            )
        )
        # the degraded worker's tasks run inline for the rest of the soak
        assert report.degraded_workers == 1
        assert report.windows == 4
        assert report.obs_monotonic


class TestRaiseEveryBuilder:
    def test_expands_to_arithmetic_deliveries(self):
        plan = FaultPlan().raise_every("joiner", every=5, count=3, start=2)
        assert [rule.nth for rule in plan.raises] == [2, 7, 12]

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultPlan().raise_every("joiner", every=0, count=1)
        with pytest.raises(ValueError):
            FaultPlan().raise_every("joiner", every=1, count=0)
