"""Unit tests for the deterministic local cluster executor."""

import pytest

from repro.exceptions import TopologyError
from repro.streaming.component import Bolt, Spout
from repro.streaming.executor import LocalCluster
from repro.streaming.grouping import (
    AllGrouping,
    FieldsGrouping,
    GlobalGrouping,
    ShuffleGrouping,
)
from repro.streaming.topology import TopologyBuilder


class NumberSpout(Spout):
    """Emits the integers 0..n-1 on stream 'numbers'."""

    def __init__(self, n: int = 10):
        self.n = n
        self._i = 0

    def next_tuple(self, collector) -> bool:
        if self._i >= self.n:
            return False
        collector.emit("numbers", (self._i,))
        self._i += 1
        return self._i < self.n


class Recorder(Bolt):
    def prepare(self, context) -> None:
        self.task = context.task_index
        self.seen: list = []

    def process(self, tup, collector) -> None:
        self.seen.append(tup.values[0])


class Doubler(Bolt):
    def process(self, tup, collector) -> None:
        collector.emit("doubled", (tup.values[0] * 2,))


def build_and_run(wire):
    builder = TopologyBuilder()
    wire(builder)
    cluster = LocalCluster(builder.build())
    cluster.run()
    return cluster


class TestExecution:
    def test_tuples_reach_single_bolt(self):
        def wire(b):
            b.set_spout("src", lambda: NumberSpout(5))
            b.set_bolt("rec", Recorder).subscribe("src", "numbers", GlobalGrouping())

        cluster = build_and_run(wire)
        assert cluster.tasks("rec")[0].seen == [0, 1, 2, 3, 4]

    def test_shuffle_splits_evenly(self):
        def wire(b):
            b.set_spout("src", lambda: NumberSpout(9))
            b.set_bolt("rec", Recorder, parallelism=3).subscribe(
                "src", "numbers", ShuffleGrouping()
            )

        cluster = build_and_run(wire)
        sizes = [len(t.seen) for t in cluster.tasks("rec")]
        assert sizes == [3, 3, 3]

    def test_all_grouping_replicates(self):
        def wire(b):
            b.set_spout("src", lambda: NumberSpout(4))
            b.set_bolt("rec", Recorder, parallelism=2).subscribe(
                "src", "numbers", AllGrouping()
            )

        cluster = build_and_run(wire)
        for task in cluster.tasks("rec"):
            assert task.seen == [0, 1, 2, 3]

    def test_chained_bolts(self):
        def wire(b):
            b.set_spout("src", lambda: NumberSpout(3))
            b.set_bolt("dbl", Doubler).subscribe("src", "numbers", GlobalGrouping())
            b.set_bolt("rec", Recorder).subscribe("dbl", "doubled", GlobalGrouping())

        cluster = build_and_run(wire)
        assert cluster.tasks("rec")[0].seen == [0, 2, 4]

    def test_fields_grouping_pins_keys(self):
        def wire(b):
            b.set_spout("src", lambda: NumberSpout(20))
            b.set_bolt("rec", Recorder, parallelism=4).subscribe(
                "src", "numbers", FieldsGrouping(key=lambda v: v[0] % 5)
            )

        cluster = build_and_run(wire)
        # each residue class must live entirely on one task
        location = {}
        for task in cluster.tasks("rec"):
            for value in task.seen:
                residue = value % 5
                location.setdefault(residue, task.task)
                assert location[residue] == task.task

    def test_fifo_drain_between_spout_emissions(self):
        """All downstream effects of tuple k happen before tuple k+1."""
        order = []

        class Tracker(Bolt):
            def __init__(self, tag):
                self.tag = tag

            def process(self, tup, collector):
                order.append((self.tag, tup.values[0]))
                if self.tag == "first":
                    collector.emit("fwd", tup.values)

        def wire(b):
            b.set_spout("src", lambda: NumberSpout(3))
            b.set_bolt("first", lambda: Tracker("first")).subscribe(
                "src", "numbers", GlobalGrouping()
            )
            b.set_bolt("second", lambda: Tracker("second")).subscribe(
                "first", "fwd", GlobalGrouping()
            )

        build_and_run(wire)
        assert order == [
            ("first", 0), ("second", 0),
            ("first", 1), ("second", 1),
            ("first", 2), ("second", 2),
        ]

    def test_stats_counters(self):
        def wire(b):
            b.set_spout("src", lambda: NumberSpout(5))
            b.set_bolt("rec", Recorder).subscribe("src", "numbers", GlobalGrouping())

        cluster = build_and_run(wire)
        stats = cluster.stats()
        assert stats["src"]["emitted"] == 5
        assert stats["rec"]["processed"] == 5
        assert cluster.emitted == 5
        assert cluster.processed == 5

    def test_determinism_across_runs(self):
        def run_once():
            def wire(b):
                b.set_spout("src", lambda: NumberSpout(12))
                b.set_bolt("rec", Recorder, parallelism=3).subscribe(
                    "src", "numbers", ShuffleGrouping()
                )

            cluster = build_and_run(wire)
            return [t.seen for t in cluster.tasks("rec")]

        assert run_once() == run_once()

    def test_tuple_budget_guards_against_loops(self):
        class Echo(Bolt):
            def process(self, tup, collector):
                collector.emit("ping", tup.values)

        builder = TopologyBuilder()
        builder.set_spout("src", lambda: NumberSpout(1))
        # a and b bounce 'ping' tuples between each other forever
        builder.set_bolt("a", Echo).subscribe(
            "src", "numbers", GlobalGrouping()
        ).subscribe("b", "ping", GlobalGrouping())
        builder.set_bolt("b", Echo).subscribe("a", "ping", GlobalGrouping())
        cluster = LocalCluster(builder.build(), max_tuples=1000)
        with pytest.raises(TopologyError, match="budget"):
            cluster.run()

    def test_factory_type_checked(self):
        builder = TopologyBuilder()
        builder.set_spout("src", Recorder)  # a bolt where a spout belongs
        with pytest.raises(TopologyError, match="Spout"):
            LocalCluster(builder.build())

    def test_multiple_spouts_interleave(self):
        def wire(b):
            b.set_spout("a", lambda: NumberSpout(2))
            b.set_spout("b", lambda: NumberSpout(2))
            rec = b.set_bolt("rec", Recorder)
            rec.subscribe("a", "numbers", GlobalGrouping())
            rec.subscribe("b", "numbers", GlobalGrouping())

        cluster = build_and_run(wire)
        assert sorted(cluster.tasks("rec")[0].seen) == [0, 0, 1, 1]


class TestObservability:
    def test_max_queue_depth_tracked(self):
        def wire(b):
            b.set_spout("src", lambda: NumberSpout(5))
            b.set_bolt("rec", Recorder, parallelism=4).subscribe(
                "src", "numbers", AllGrouping()
            )

        cluster = build_and_run(wire)
        # each source tuple fans out to 4 tasks before draining
        assert cluster.max_queue_depth == 4

    def test_queue_depth_zero_without_subscribers(self):
        def wire(b):
            b.set_spout("src", lambda: NumberSpout(3))

        cluster = build_and_run(wire)
        assert cluster.max_queue_depth == 0
