"""Seeded chaos suite: recovery must not change results.

Every case injects deterministic faults through :mod:`repro.faults`
(worker kills, poison tuples, delayed acks) and asserts the recovered
run's output against a clean reference run.  All cases fork worker
processes and carry the ``chaos`` marker; run them via
``make test-chaos`` (or ``pytest -m chaos``).
"""

import pytest

from repro.core.document import Document
from repro.data.serverlogs import ServerLogGenerator
from repro.exceptions import WorkerCrashError
from repro.faults import FaultPlan
from repro.streaming.component import Bolt, Spout
from repro.streaming.executor import LocalCluster
from repro.streaming.grouping import AllGrouping, FieldsGrouping, GlobalGrouping
from repro.streaming.parallel import ParallelCluster
from repro.streaming.recovery import DeadLetterQueue, RestartPolicy
from repro.streaming.topology import TopologyBuilder
from repro.topology import messages as msg
from repro.topology.pipeline import StreamJoinConfig, run_stream_join

pytestmark = pytest.mark.chaos

#: zero-backoff policy so restart loops do not slow the suite down
FAST_RESTART = RestartPolicy(
    max_restarts_per_window=3, backoff_base_s=0.0, jitter=0.0
)


# ----------------------------------------------------------------------
# Synthetic topology: numbers -> squares, with a periodic barrier tick
# ----------------------------------------------------------------------
class TickingNumberSpout(Spout):
    """Emits 0..n-1 with a barrier tick every ``period`` numbers."""

    def __init__(self, n: int, period: int = 10):
        self.n, self.period, self._i = n, period, 0

    def next_tuple(self, collector) -> bool:
        if self._i >= self.n:
            return False
        collector.emit("numbers", (self._i,))
        self._i += 1
        if self._i % self.period == 0:
            collector.emit("tick", (self._i,))
        return self._i < self.n


class SquareBolt(Bolt):
    def process(self, tup, collector) -> None:
        if tup.stream == "numbers":
            collector.emit("squares", (tup.values[0] ** 2,))


class CollectBolt(Bolt):
    def __init__(self):
        self.values: list[int] = []

    def process(self, tup, collector) -> None:
        self.values.append(tup.values[0])


def _square_topology(collector: CollectBolt, n: int = 50):
    builder = TopologyBuilder()
    builder.set_spout("src", lambda: TickingNumberSpout(n))
    square = builder.set_bolt("square", SquareBolt, parallelism=2)
    square.subscribe("src", "numbers", FieldsGrouping(key=0))
    square.subscribe("src", "tick", AllGrouping())
    builder.set_bolt("collect", lambda: collector).subscribe(
        "square", "squares", GlobalGrouping()
    )
    return builder.build()


def _clean_reference(n: int = 50) -> list[int]:
    collector = CollectBolt()
    with LocalCluster(_square_topology(collector, n)) as cluster:
        cluster.run()
    return sorted(collector.values)


def _parallel(collector: CollectBolt, n: int = 50, **kwargs) -> ParallelCluster:
    return ParallelCluster(
        _square_topology(collector, n),
        remote_components=("square",),
        barrier_streams=("tick",),
        n_workers=2,
        batch_size=4,
        **kwargs,
    )


class TestSyntheticChaos:
    def test_restart_replays_journal_byte_identical(self):
        clean = _clean_reference()
        collector = CollectBolt()
        cluster = _parallel(
            collector,
            restart_policy=FAST_RESTART,
            fault_plan=FaultPlan().kill_worker(0, after_batches=1),
        )
        with cluster:
            cluster.run()
            stats = cluster.stats()
        assert sorted(collector.values) == clean
        assert stats["worker_restarts"] == 1
        assert stats["dead_letters"] == 0

    def test_repeated_kills_within_budget(self):
        clean = _clean_reference()
        collector = CollectBolt()
        plan = (
            FaultPlan()
            .kill_worker(0, after_batches=1, incarnation=0)
            .kill_worker(0, after_batches=1, incarnation=1)
        )
        cluster = _parallel(collector, restart_policy=FAST_RESTART, fault_plan=plan)
        with cluster:
            cluster.run()
            stats = cluster.stats()
        assert sorted(collector.values) == clean
        assert stats["worker_restarts"] == 2

    def test_budget_exhaustion_without_degrade_aborts(self):
        collector = CollectBolt()
        cluster = _parallel(
            collector,
            restart_policy=RestartPolicy(
                max_restarts_per_window=0, backoff_base_s=0.0, jitter=0.0
            ),
            fault_plan=FaultPlan().kill_worker(0, after_batches=1),
        )
        with pytest.raises(WorkerCrashError) as err:
            cluster.run()
        assert "restart budget" in str(err.value)
        assert err.value.worker == 0
        cluster.close()

    def test_budget_exhaustion_degrades_to_inline(self):
        clean = _clean_reference()
        collector = CollectBolt()
        cluster = _parallel(
            collector,
            restart_policy=RestartPolicy(
                max_restarts_per_window=0,
                backoff_base_s=0.0,
                jitter=0.0,
                degrade=True,
            ),
            fault_plan=FaultPlan().kill_worker(0, after_batches=1),
        )
        with cluster:
            cluster.run()
            stats = cluster.stats()
        assert sorted(collector.values) == clean
        assert cluster.degraded_workers == 1
        assert stats["worker_restarts"] == 0

    def test_worker_side_quarantine_records_dead_letters(self):
        collector = CollectBolt()
        dlq = DeadLetterQueue()
        cluster = _parallel(
            collector,
            dead_letters=dlq,
            fault_plan=FaultPlan().raise_in("square", nth=5, stream="numbers"),
        )
        with cluster:
            cluster.run()
            stats = cluster.stats()
        # one poison per worker runtime (each worker counts its own 5th)
        assert stats["dead_letters"] == 2
        assert len(collector.values) == 50 - 2
        for letter in dlq:
            assert letter.component == "square"
            assert letter.worker is not None
            assert letter.batch_seq is not None
            assert "injected fault" in letter.cause

    def test_sticky_poison_survives_retries(self):
        collector = CollectBolt()
        dlq = DeadLetterQueue()
        cluster = _parallel(
            collector,
            max_retries=2,
            dead_letters=dlq,
            fault_plan=FaultPlan().raise_in("square", nth=3, stream="numbers"),
        )
        with cluster:
            cluster.run()
            stats = cluster.stats()
        assert stats["dead_letters"] == 2
        for letter in dlq:
            assert letter.attempts == 2  # the full retry budget was spent

    def test_transient_fault_heals_on_retry(self):
        clean = _clean_reference()
        collector = CollectBolt()
        cluster = _parallel(
            collector,
            max_retries=1,
            fault_plan=FaultPlan().raise_in(
                "square", nth=5, stream="numbers", sticky=False
            ),
        )
        with cluster:
            cluster.run()
            stats = cluster.stats()
        assert sorted(collector.values) == clean
        assert stats["dead_letters"] == 0
        # one transient failure per worker runtime, both healed on retry
        assert cluster.failures == 2


# ----------------------------------------------------------------------
# End-to-end: the full Fig. 2 topology under faults
# ----------------------------------------------------------------------
def _windows(n_windows: int = 3, size: int = 120):
    generator = ServerLogGenerator(seed=23)
    return [generator.next_window(size) for _ in range(n_windows)]


def _config(**overrides) -> StreamJoinConfig:
    return StreamJoinConfig(
        m=4,
        n_creators=2,
        n_assigners=3,
        compute_joins=True,
        collect_pairs=True,
        **overrides,
    )


#: a document sharing no AV-pair with any generated one: it joins with
#: nothing, so quarantining some replicas and storing others cannot
#: change the join results
POISON = Document({"__chaos_poison__": "boom"}, doc_id=999_983)


class TestTopologyChaos:
    def test_kill_plus_poison_matches_clean_local_run(self):
        """The acceptance scenario: one worker killed mid-window plus one
        poison document, and per-window join results still match the
        fault-free local run byte for byte."""
        windows = _windows()
        clean = run_stream_join(_config(), windows)
        # the poison document leads window 0: during bootstrap every
        # document is broadcast, so it is deterministically the first
        # joiner delivery in every worker and nth=1 selects it
        poisoned = [list(windows[0]), *map(list, windows[1:])]
        poisoned[0].insert(0, POISON)
        plan = (
            FaultPlan()
            .kill_worker(0, after_batches=1)
            .raise_in(msg.JOINER, nth=1, stream=msg.ASSIGNED)
        )
        faulted = run_stream_join(
            _config(
                backend="parallel",
                workers=2,
                max_retries=1,
                dead_letters=True,
                restart_policy=FAST_RESTART,
                fault_plan=plan,
            ),
            poisoned,
        )
        assert [w.join_pairs for w in faulted.per_window] == [
            w.join_pairs for w in clean.per_window
        ]
        assert faulted.join_pairs == clean.join_pairs
        assert faulted.tuple_stats["worker_restarts"] >= 1
        assert faulted.tuple_stats["dead_letters"] >= 1
        assert faulted.dead_letters  # entries surfaced on the result
        assert all(d.component == msg.JOINER for d in faulted.dead_letters)

    def test_kill_and_restart_is_fully_byte_identical(self):
        """Without poison, recovery must preserve *all* outputs — metrics,
        join pairs and tuple accounting (modulo the restart counter)."""
        windows = _windows()
        clean = run_stream_join(_config(), windows)
        faulted = run_stream_join(
            _config(
                backend="parallel",
                workers=2,
                restart_policy=FAST_RESTART,
                fault_plan=FaultPlan().kill_worker(0, after_batches=1),
            ),
            windows,
        )
        assert faulted.per_window == clean.per_window
        assert faulted.join_pairs == clean.join_pairs
        assert faulted.repartition_windows == clean.repartition_windows
        clean_stats = dict(clean.tuple_stats)
        faulted_stats = dict(faulted.tuple_stats)
        assert faulted_stats.pop("worker_restarts") >= 1
        clean_stats.pop("worker_restarts")
        # transport identity and reconnect count legitimately differ
        # between a local reference and a recovered parallel run
        assert faulted_stats.pop("transport") == "pipe"
        assert clean_stats.pop("transport") is None
        assert faulted_stats.pop("reconnects") >= 1
        clean_stats.pop("reconnects")
        # load-signal gauges differ between inline and worker-pool runs
        assert faulted_stats.pop("inflight_high_water") > 0
        clean_stats.pop("inflight_high_water")
        assert faulted_stats.pop("journal_bytes") == 0
        clean_stats.pop("journal_bytes")
        assert faulted_stats == clean_stats

    def test_degrade_preserves_results_end_to_end(self):
        windows = _windows(n_windows=2)
        clean = run_stream_join(_config(), windows)
        faulted = run_stream_join(
            _config(
                backend="parallel",
                workers=2,
                restart_policy=RestartPolicy(
                    max_restarts_per_window=0,
                    backoff_base_s=0.0,
                    jitter=0.0,
                    degrade=True,
                ),
                fault_plan=FaultPlan().kill_worker(0, after_batches=1),
            ),
            windows,
        )
        assert faulted.per_window == clean.per_window
        assert faulted.join_pairs == clean.join_pairs
        assert faulted.tuple_stats["worker_restarts"] == 0
