"""Unit tests for the recovery primitives and the fault-injection DSL.

Pure in-process tests (no forking) — these run in tier-1; the forked
end-to-end scenarios live in ``test_chaos.py``.
"""

import random

import pytest

from repro.faults import FaultPlan, InjectedFault
from repro.streaming.recovery import (
    DeadLetter,
    DeadLetterQueue,
    RestartPolicy,
    truncated_repr,
)


class TestRestartPolicy:
    def test_backoff_grows_exponentially_and_caps(self):
        policy = RestartPolicy(
            backoff_base_s=0.1, backoff_factor=2.0, backoff_max_s=0.3, jitter=0.0
        )
        rng = random.Random(0)
        assert policy.delay(0, rng) == pytest.approx(0.1)
        assert policy.delay(1, rng) == pytest.approx(0.2)
        assert policy.delay(2, rng) == pytest.approx(0.3)  # capped
        assert policy.delay(5, rng) == pytest.approx(0.3)

    def test_jitter_inflates_within_bound_and_is_seeded(self):
        policy = RestartPolicy(backoff_base_s=1.0, backoff_max_s=1.0, jitter=0.5)
        delays = [policy.delay(0, random.Random(42)) for _ in range(3)]
        assert delays[0] == delays[1] == delays[2]  # same seed, same delay
        assert 1.0 <= delays[0] <= 1.5

    def test_validation(self):
        with pytest.raises(ValueError):
            RestartPolicy(max_restarts_per_window=-1)
        with pytest.raises(ValueError):
            RestartPolicy(backoff_base_s=-0.1)
        with pytest.raises(ValueError):
            RestartPolicy(jitter=-1.0)


class TestDeadLetterQueue:
    def _letter(self, i: int) -> DeadLetter:
        return DeadLetter(
            component="joiner", task_index=i, stream="assigned",
            attempts=1, cause="RuntimeError('boom')",
        )

    def test_total_outlives_the_retention_limit(self):
        queue = DeadLetterQueue(limit=3)
        for i in range(10):
            queue.record(self._letter(i))
        assert queue.total == 10
        assert len(queue) == 3
        assert [letter.task_index for letter in queue] == [7, 8, 9]

    def test_unbounded_retention(self):
        queue = DeadLetterQueue(limit=None)
        for i in range(5):
            queue.record(self._letter(i))
        assert len(queue.entries) == 5

    def test_configured_empty_queue_is_truthy(self):
        # executors test ``dead_letters is not None`` semantics via bool
        assert bool(DeadLetterQueue())

    def test_limit_validation(self):
        with pytest.raises(ValueError):
            DeadLetterQueue(limit=0)

    def test_truncated_repr_bounds_payloads(self):
        text = truncated_repr(("x" * 1000,), limit=50)
        assert len(text) == 50
        assert text.endswith("...")


class TestFaultPlan:
    def test_empty_plan_is_inert(self):
        assert FaultPlan().empty
        assert not FaultPlan().kill_worker(0, after_batches=1).empty

    def test_builders_are_pure(self):
        base = FaultPlan()
        derived = base.raise_in("joiner", nth=1)
        assert base.empty and not derived.empty

    def test_nth_is_one_based(self):
        with pytest.raises(ValueError):
            FaultPlan().raise_in("joiner", nth=0)

    def test_kill_rule_scoped_to_worker_and_incarnation(self):
        plan = FaultPlan().kill_worker(1, after_batches=2, exit_code=7)
        runtime = plan.runtime(worker_index=1, incarnation=0)
        assert runtime.kill_on_batch() is None  # batch 1
        assert runtime.kill_on_batch() is None  # batch 2
        assert runtime.kill_on_batch() == 7  # batch 3: boom
        # other workers and later incarnations are untouched
        assert plan.runtime(worker_index=0).kill_on_batch() is None
        replacement = plan.runtime(worker_index=1, incarnation=1)
        for _ in range(5):
            assert replacement.kill_on_batch() is None

    def test_raise_rule_counts_first_attempts_only(self):
        plan = FaultPlan().raise_in("joiner", nth=2, sticky=False)
        runtime = plan.runtime()
        runtime.check_raise("joiner", "assigned", key=1, first_attempt=True)
        # a retry of delivery 1 does not advance the count
        runtime.check_raise("joiner", "assigned", key=1, first_attempt=False)
        with pytest.raises(InjectedFault):
            runtime.check_raise("joiner", "assigned", key=2, first_attempt=True)
        # non-sticky: the same delivery passes on retry
        runtime.check_raise("joiner", "assigned", key=2, first_attempt=False)

    def test_sticky_rule_refires_on_the_poison_key_only(self):
        plan = FaultPlan().raise_in("joiner", nth=1)
        runtime = plan.runtime()
        with pytest.raises(InjectedFault):
            runtime.check_raise("joiner", "assigned", key=7, first_attempt=True)
        with pytest.raises(InjectedFault):  # retry of the poison delivery
            runtime.check_raise("joiner", "assigned", key=7, first_attempt=False)
        # other deliveries pass; the rule fired already
        runtime.check_raise("joiner", "assigned", key=8, first_attempt=True)

    def test_stream_filter(self):
        plan = FaultPlan().raise_in("joiner", nth=1, stream="assigned")
        runtime = plan.runtime()
        runtime.check_raise("joiner", "partitions", key=1, first_attempt=True)
        with pytest.raises(InjectedFault):
            runtime.check_raise("joiner", "assigned", key=2, first_attempt=True)

    def test_ack_delays_accumulate_per_matching_rule(self):
        plan = FaultPlan().delay_acks(0, seconds=0.5, every=2)
        runtime = plan.runtime(worker_index=0)
        assert runtime.ack_delay() == 0.0  # ack 1
        assert runtime.ack_delay() == 0.5  # ack 2
        assert runtime.ack_delay() == 0.0  # ack 3
        other = plan.runtime(worker_index=1)
        assert other.ack_delay() == 0.0
        assert other.ack_delay() == 0.0
