"""Seeded elasticity chaos suite: scaling must not change results.

Every case drives the elastic worker pool — forced scale-ups and
scale-downs, live partition migration, destination-worker kills
mid-migration, load shedding under sustained backpressure — through the
``ElasticPolicy.force`` schedule so the *timing* of every action is
exact, then asserts the run's output against a clean reference.  All
cases fork worker processes and carry the ``elastic`` marker; run them
via ``make test-elastic`` (or ``pytest -m elastic``).
"""

import pytest

from repro.data.zoo import ZipfSkewGenerator
from repro.faults import FaultPlan
from repro.streaming.component import Bolt, Spout
from repro.streaming.elastic import ElasticPolicy
from repro.streaming.executor import LocalCluster
from repro.streaming.grouping import AllGrouping, FieldsGrouping, GlobalGrouping
from repro.streaming.parallel import ParallelCluster
from repro.streaming.recovery import DeadLetterQueue, RestartPolicy
from repro.streaming.topology import TopologyBuilder
from repro.topology.pipeline import StreamJoinConfig, run_stream_join

pytestmark = pytest.mark.elastic

FAST_RESTART = RestartPolicy(
    max_restarts_per_window=3, backoff_base_s=0.0, jitter=0.0
)


# ----------------------------------------------------------------------
# Synthetic topology: numbers -> squares across four migratable tasks
# ----------------------------------------------------------------------
class TickingNumberSpout(Spout):
    """Emits 0..n-1 with a barrier tick every ``period`` numbers."""

    def __init__(self, n: int, period: int = 10):
        self.n, self.period, self._i = n, period, 0

    def next_tuple(self, collector) -> bool:
        if self._i >= self.n:
            return False
        collector.emit("numbers", (self._i,))
        self._i += 1
        if self._i % self.period == 0:
            collector.emit("tick", (self._i,))
        return self._i < self.n


class SquareBolt(Bolt):
    def process(self, tup, collector) -> None:
        if tup.stream == "numbers":
            collector.emit("squares", (tup.values[0] ** 2,))


class CollectBolt(Bolt):
    def __init__(self):
        self.values: list[int] = []

    def process(self, tup, collector) -> None:
        self.values.append(tup.values[0])


def _square_topology(collector: CollectBolt, n: int = 50):
    builder = TopologyBuilder()
    builder.set_spout("src", lambda: TickingNumberSpout(n))
    square = builder.set_bolt("square", SquareBolt, parallelism=4)
    square.subscribe("src", "numbers", FieldsGrouping(key=0))
    square.subscribe("src", "tick", AllGrouping())
    builder.set_bolt("collect", lambda: collector).subscribe(
        "square", "squares", GlobalGrouping()
    )
    return builder.build()


def _clean_reference(n: int = 50) -> list[int]:
    collector = CollectBolt()
    with LocalCluster(_square_topology(collector, n)) as cluster:
        cluster.run()
    return sorted(collector.values)


def _parallel(collector: CollectBolt, n: int = 50, workers: int = 2, **kwargs):
    return ParallelCluster(
        _square_topology(collector, n),
        remote_components=("square",),
        barrier_streams=("tick",),
        workers=workers,
        batch_size=4,
        **kwargs,
    )


class TestSyntheticElasticity:
    def test_forced_scale_up_migrates_and_matches(self):
        """One forced scale-up: the hottest task live-migrates onto a
        freshly spawned worker and the output is unchanged."""
        clean = _clean_reference()
        collector = CollectBolt()
        cluster = _parallel(
            collector,
            elastic=ElasticPolicy(max_workers=4, force=((0, "up"),)),
        )
        with cluster:
            cluster.run()
            stats = cluster.stats()
        assert sorted(collector.values) == clean
        assert stats["scale_ups"] == 1
        assert stats["migrations"] == 1
        assert cluster.n_workers == 3

    def test_scales_two_to_four_workers(self):
        """The acceptance shape: pool grows 2 -> 4 through two live
        migrations, byte-identical output throughout."""
        clean = _clean_reference()
        collector = CollectBolt()
        cluster = _parallel(
            collector,
            elastic=ElasticPolicy(max_workers=4, force=((0, "up"), (1, "up"))),
        )
        with cluster:
            cluster.run()
            stats = cluster.stats()
        assert sorted(collector.values) == clean
        assert stats["scale_ups"] == 2
        assert stats["migrations"] == 2
        assert cluster.n_workers == 4

    def test_forced_scale_down_retires_into_survivor(self):
        clean = _clean_reference()
        collector = CollectBolt()
        cluster = _parallel(
            collector,
            workers=3,
            elastic=ElasticPolicy(max_workers=4, force=((0, "down"),)),
        )
        with cluster:
            cluster.run()
            stats = cluster.stats()
        assert sorted(collector.values) == clean
        assert stats["scale_downs"] == 1
        assert stats["migrations"] == 1
        assert cluster.n_workers == 2

    def test_up_then_down_round_trip(self):
        clean = _clean_reference()
        collector = CollectBolt()
        cluster = _parallel(
            collector,
            elastic=ElasticPolicy(
                max_workers=4, force=((0, "up"), (2, "down"))
            ),
        )
        with cluster:
            cluster.run()
            stats = cluster.stats()
        assert sorted(collector.values) == clean
        assert stats["scale_ups"] == 1
        assert stats["scale_downs"] == 1
        assert cluster.n_workers == 2

    def test_destination_killed_mid_migration_recovers(self):
        """The freshly spawned migration target dies after its first
        batch; the respawn path must rebuild its (merged) journal and
        keep the output byte-identical."""
        clean = _clean_reference()
        collector = CollectBolt()
        cluster = _parallel(
            collector,
            restart_policy=FAST_RESTART,
            elastic=ElasticPolicy(max_workers=4, force=((0, "up"),)),
            fault_plan=FaultPlan().kill_worker(2, after_batches=1),
        )
        with cluster:
            cluster.run()
            stats = cluster.stats()
        assert sorted(collector.values) == clean
        assert stats["scale_ups"] == 1
        assert stats["worker_restarts"] >= 1

    def test_source_killed_after_migration_recovers(self):
        clean = _clean_reference()
        collector = CollectBolt()
        cluster = _parallel(
            collector,
            restart_policy=FAST_RESTART,
            elastic=ElasticPolicy(max_workers=4, force=((0, "up"),)),
            fault_plan=FaultPlan().kill_worker(0, after_batches=3),
        )
        with cluster:
            cluster.run()
            stats = cluster.stats()
        assert sorted(collector.values) == clean
        assert stats["scale_ups"] == 1
        assert stats["worker_restarts"] >= 1

    def test_no_shed_below_overload_threshold(self):
        """An armed shedder must stay silent on a healthy run."""
        clean = _clean_reference()
        collector = CollectBolt()
        cluster = _parallel(
            collector,
            dead_letters=DeadLetterQueue(),
            elastic=ElasticPolicy(max_workers=2, shed=True),
        )
        with cluster:
            cluster.run()
            stats = cluster.stats()
        assert sorted(collector.values) == clean
        assert stats["shed_tuples"] == 0
        assert stats["dead_letters"] == 0

    def test_sustained_overload_sheds_to_dead_letters(self):
        """With a one-batch inflight budget every window backpressures;
        once the streak passes the policy threshold, excess tuples are
        quarantined with ``reason="shed"`` instead of queueing."""
        collector = CollectBolt()
        dlq = DeadLetterQueue()
        cluster = _parallel(
            collector,
            n=120,
            max_inflight=1,
            dead_letters=dlq,
            elastic=ElasticPolicy(
                max_workers=2, shed=True, shed_after_windows=1
            ),
        )
        with cluster:
            cluster.run()
            stats = cluster.stats()
        assert stats["shed_tuples"] > 0
        assert stats["shed_tuples"] == len(
            [letter for letter in dlq if letter.reason == "shed"]
        )
        # every shed tuple is missing from the output, nothing else
        clean = _clean_reference(120)
        assert len(collector.values) == len(clean) - stats["shed_tuples"]
        assert set(collector.values) <= set(clean)

    def test_shed_without_dead_letters_rejected(self):
        from repro.exceptions import TopologyError

        collector = CollectBolt()
        with pytest.raises(TopologyError, match="dead_letters"):
            _parallel(collector, elastic=ElasticPolicy(shed=True))

    def test_stats_expose_elastic_counters(self):
        collector = CollectBolt()
        cluster = _parallel(
            collector,
            elastic=ElasticPolicy(max_workers=4, force=((0, "up"),)),
        )
        with cluster:
            cluster.run()
            stats = cluster.stats()
        for key in ("scale_ups", "scale_downs", "migrations", "shed_tuples"):
            assert key in stats
        assert stats["inflight_high_water"] > 0
        assert stats["journal_bytes"] == 0  # all barriers drained


# ----------------------------------------------------------------------
# End-to-end: the full topology under a viral-skew stream
# ----------------------------------------------------------------------
def _zipf_windows(n_windows: int = 4, size: int = 120):
    generator = ZipfSkewGenerator(seed=31)
    return [generator.next_window(size) for _ in range(n_windows)]


def _config(**overrides) -> StreamJoinConfig:
    return StreamJoinConfig(
        m=4,
        n_creators=2,
        n_assigners=3,
        compute_joins=True,
        collect_pairs=True,
        **overrides,
    )


class TestViralSkewTopology:
    @pytest.mark.parametrize("transport", ["pipe", "socket"])
    def test_elastic_run_matches_clean_local_run(self, transport):
        """The acceptance scenario on both transports: under the viral
        ramp the pool scales 2 -> 4 with live migrations, and per-window
        join results stay byte-identical to the fault-free local run."""
        windows = _zipf_windows()
        clean = run_stream_join(_config(), windows)
        elastic = run_stream_join(
            _config(
                backend="parallel",
                transport=transport,
                workers=2,
                elastic=ElasticPolicy(
                    max_workers=4, force=((0, "up"), (1, "up"))
                ),
            ),
            windows,
        )
        assert [w.join_pairs for w in elastic.per_window] == [
            w.join_pairs for w in clean.per_window
        ]
        assert elastic.join_pairs == clean.join_pairs
        assert elastic.tuple_stats["scale_ups"] == 2
        assert elastic.tuple_stats["migrations"] == 2
        assert elastic.tuple_stats["shed_tuples"] == 0

    def test_hot_worker_killed_mid_window_still_matches(self):
        """Kill the worker holding the viral partition mid-window while
        the controller migrates under it; recovery and migration compose
        without changing any per-window result."""
        windows = _zipf_windows()
        clean = run_stream_join(_config(), windows)
        faulted = run_stream_join(
            _config(
                backend="parallel",
                workers=2,
                restart_policy=FAST_RESTART,
                elastic=ElasticPolicy(max_workers=4, force=((0, "up"),)),
                fault_plan=FaultPlan().kill_worker(0, after_batches=2),
            ),
            windows,
        )
        assert [w.join_pairs for w in faulted.per_window] == [
            w.join_pairs for w in clean.per_window
        ]
        assert faulted.join_pairs == clean.join_pairs
        assert faulted.tuple_stats["worker_restarts"] >= 1
        assert faulted.tuple_stats["scale_ups"] == 1

    def test_organic_scale_up_under_viral_ramp(self):
        """No forced schedule: the controller must notice the viral
        partition organically once its share crosses ``hot_share``, and
        the run must still match the local reference."""
        windows = _zipf_windows(n_windows=5)
        clean = run_stream_join(_config(), windows)
        elastic = run_stream_join(
            _config(
                backend="parallel",
                workers=2,
                elastic=ElasticPolicy(max_workers=4, hot_share=0.5),
            ),
            windows,
        )
        assert [w.join_pairs for w in elastic.per_window] == [
            w.join_pairs for w in clean.per_window
        ]
        assert elastic.join_pairs == clean.join_pairs
