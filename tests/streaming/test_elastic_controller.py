"""Unit tests for the pure elastic decision logic.

The controller is consulted once per completed window barrier with one
:class:`WorkerLoad` per live worker; everything here runs on synthetic
loads — no worker processes, no transport.
"""

import pytest

from repro.exceptions import TopologyError
from repro.streaming.elastic import (
    Decision,
    ElasticController,
    ElasticPolicy,
    WorkerLoad,
)


def _load(worker, tasks, task_docs, pending=0, high_water=0, journal=0, busy=0.0):
    return WorkerLoad(
        worker=worker,
        tasks=tuple(tasks),
        task_docs=tuple(task_docs),
        docs=sum(docs for _key, docs in task_docs),
        pending=pending,
        inflight_high_water=high_water,
        journal_bytes=journal,
        busy_s=busy,
    )


def _even_pair():
    """Two workers with two tasks each, evenly loaded."""
    return [
        _load(0, [("J", 0), ("J", 2)], [(("J", 0), 50), (("J", 2), 50)]),
        _load(1, [("J", 1), ("J", 3)], [(("J", 1), 50), (("J", 3), 50)]),
    ]


def _skewed_pair(hot_docs=900, cold_docs=50):
    """Worker 0 drowning on task ("J", 0), worker 1 nearly idle."""
    return [
        _load(0, [("J", 0), ("J", 2)], [(("J", 0), hot_docs), (("J", 2), 10)]),
        _load(1, [("J", 1), ("J", 3)], [(("J", 1), cold_docs), (("J", 3), 0)]),
    ]


class TestPolicyValidation:
    def test_defaults_are_valid(self):
        policy = ElasticPolicy()
        assert policy.min_workers == 1
        assert policy.max_workers == 8

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"min_workers": 0},
            {"min_workers": 4, "max_workers": 2},
            {"hot_share": 0.0},
            {"hot_share": 1.5},
            {"cold_share": -0.1},
            {"cold_share": 0.7, "hot_share": 0.6},
            {"cooldown_windows": -1},
            {"shed_after_windows": 0},
            {"force": (("1", "up"),)},
            {"force": ((1, "sideways"),)},
        ],
    )
    def test_bad_knobs_rejected(self, kwargs):
        with pytest.raises(TopologyError):
            ElasticPolicy(**kwargs)

    def test_policy_is_hashable(self):
        """Frozen policies key experiment caches."""
        a = ElasticPolicy(min_workers=2, max_workers=4, force=((0, "up"),))
        b = ElasticPolicy(min_workers=2, max_workers=4, force=((0, "up"),))
        assert hash(a) == hash(b)


class TestOrganicScaleUp:
    def test_hot_worker_sheds_its_hottest_task(self):
        controller = ElasticController(ElasticPolicy(max_workers=4))
        decision = controller.decide(0, _skewed_pair())
        assert decision is not None
        assert decision.kind == "up"
        assert decision.source == 0
        assert decision.keys == (("J", 0),)
        assert decision.target is None

    def test_even_load_stays_put(self):
        controller = ElasticController(ElasticPolicy(max_workers=4))
        assert controller.decide(0, _even_pair()) is None

    def test_max_workers_caps_the_pool(self):
        controller = ElasticController(ElasticPolicy(max_workers=2))
        assert controller.decide(0, _skewed_pair()) is None

    def test_single_task_worker_cannot_split(self):
        loads = [
            _load(0, [("J", 0)], [(("J", 0), 900)]),
            _load(1, [("J", 1)], [(("J", 1), 10)]),
        ]
        controller = ElasticController(
            ElasticPolicy(min_workers=2, max_workers=4)
        )
        assert controller.decide(0, loads) is None

    def test_hot_share_threshold_respected(self):
        # worker 0 holds 60% exactly with hot_share=0.7: below threshold
        loads = [
            _load(0, [("J", 0), ("J", 2)], [(("J", 0), 50), (("J", 2), 10)]),
            _load(1, [("J", 1), ("J", 3)], [(("J", 1), 40), (("J", 3), 0)]),
        ]
        controller = ElasticController(ElasticPolicy(max_workers=4, hot_share=0.7))
        assert controller.decide(0, loads) is None
        lenient = ElasticController(ElasticPolicy(max_workers=4, hot_share=0.5))
        decision = lenient.decide(0, loads)
        assert decision is not None and decision.kind == "up"

    def test_idle_window_never_scales(self):
        loads = [
            _load(0, [("J", 0), ("J", 2)], [(("J", 0), 0), (("J", 2), 0)]),
            _load(1, [("J", 1)], [(("J", 1), 0)]),
        ]
        controller = ElasticController(ElasticPolicy(max_workers=4))
        assert controller.decide(0, loads) is None


class TestOrganicScaleDown:
    def test_cold_worker_retires_into_least_loaded_survivor(self):
        loads = [
            _load(0, [("J", 0)], [(("J", 0), 500)]),
            _load(1, [("J", 1)], [(("J", 1), 2)]),
            _load(2, [("J", 2)], [(("J", 2), 480)]),
        ]
        controller = ElasticController(
            ElasticPolicy(min_workers=1, max_workers=3, hot_share=0.95)
        )
        decision = controller.decide(0, loads)
        assert decision is not None
        assert decision.kind == "down"
        assert decision.source == 1
        assert decision.keys == (("J", 1),)
        assert decision.target == 2  # 480 docs < 500

    def test_min_workers_floor_respected(self):
        loads = [
            _load(0, [("J", 0)], [(("J", 0), 500)]),
            _load(1, [("J", 1)], [(("J", 1), 1)]),
        ]
        controller = ElasticController(
            ElasticPolicy(min_workers=2, max_workers=4, hot_share=0.999)
        )
        assert controller.decide(0, loads) is None


class TestCooldownAndForce:
    def test_cooldown_suppresses_consecutive_actions(self):
        controller = ElasticController(
            ElasticPolicy(max_workers=8, cooldown_windows=1)
        )
        assert controller.decide(0, _skewed_pair()) is not None
        # window 1 is within the cooldown; window 2 is past it
        assert controller.decide(1, _skewed_pair()) is None
        assert controller.decide(2, _skewed_pair()) is not None

    def test_zero_cooldown_allows_back_to_back(self):
        controller = ElasticController(
            ElasticPolicy(max_workers=8, cooldown_windows=0)
        )
        assert controller.decide(0, _skewed_pair()) is not None
        assert controller.decide(1, _skewed_pair()) is not None

    def test_forced_action_bypasses_thresholds_and_fires_once(self):
        controller = ElasticController(
            ElasticPolicy(max_workers=4, force=((1, "up"),))
        )
        even = _even_pair()
        assert controller.decide(0, even) is None
        decision = controller.decide(1, even)
        assert decision is not None and decision.kind == "up"
        assert "forced" in decision.reason
        # the schedule entry is consumed; nothing organic on even load
        assert controller.decide(3, even) is None

    def test_forced_down_names_source_and_target(self):
        loads = [
            _load(0, [("J", 0)], [(("J", 0), 100)]),
            _load(1, [("J", 1)], [(("J", 1), 100)]),
            _load(2, [("J", 2)], [(("J", 2), 10)]),
        ]
        controller = ElasticController(
            ElasticPolicy(max_workers=4, force=((0, "down"),))
        )
        decision = controller.decide(0, loads)
        assert decision is not None
        assert decision.kind == "down"
        assert decision.source == 2
        assert decision.target in (0, 1)

    def test_empty_load_list_is_a_no_op(self):
        controller = ElasticController(ElasticPolicy(force=((0, "up"),)))
        assert controller.decide(0, []) is None


class TestShedding:
    def test_streak_arms_and_clears(self):
        controller = ElasticController(
            ElasticPolicy(shed=True, shed_after_windows=3)
        )
        for _ in range(2):
            controller.observe_pressure(True)
        assert not controller.shed_active
        controller.observe_pressure(True)
        assert controller.shed_active
        controller.observe_pressure(False)
        assert controller.pressure_streak == 0
        assert not controller.shed_active

    def test_shed_disarmed_without_the_flag(self):
        controller = ElasticController(ElasticPolicy(shed=False))
        for _ in range(10):
            controller.observe_pressure(True)
        assert not controller.shed_active


class TestDecisionShape:
    def test_decision_carries_a_reason(self):
        controller = ElasticController(ElasticPolicy(max_workers=4))
        decision = controller.decide(0, _skewed_pair())
        assert isinstance(decision, Decision)
        assert decision.reason
