"""The Transport/WorkerLink seam: framing, config surface, conformance.

Three layers of coverage:

* tier-1 units for the wire framing helpers, the transport registry and
  the ``workers``/``transport`` configuration surface (the retired
  ``parallel_workers`` spelling must stay gone);
* a tier-1 socket smoke case (one TCP worker, tiny topology) so the
  default test run exercises a real ``python -m repro.worker``
  subprocess end to end;
* the transport conformance suite — the contract every implementation
  must satisfy (ordering, barrier flush, reconnect re-encode, unified
  stats, idempotent close) — instantiated for the pipe transport under
  the ``parallel`` marker and for the socket transport under the
  ``distributed`` marker.
"""

import argparse
import warnings

import pytest

from repro.cli import _workers_argument
from repro.exceptions import PartitioningError, TopologyError
from repro.experiments.config import ExperimentConfig
from repro.faults import FaultPlan
from repro.streaming.component import Bolt, Spout
from repro.streaming.executor import LocalCluster
from repro.streaming.grouping import AllGrouping, FieldsGrouping, GlobalGrouping
from repro.streaming.parallel import ParallelCluster
from repro.streaming.recovery import RestartPolicy
from repro.streaming.topology import TopologyBuilder
from repro.streaming.transport import (
    Transport,
    available_transports,
    make_transport,
)
from repro.streaming.transport.framing import (
    BufferFrame,
    FrameDecoder,
    decode_buffer_payload,
    encode_frame,
    format_banner,
    is_attach_address,
    parse_address,
    parse_banner,
)
from repro.topology.messages import ColumnarWireCodec
from repro.topology.pipeline import StreamJoinConfig


# ----------------------------------------------------------------------
# Wire framing
# ----------------------------------------------------------------------
class TestFraming:
    def test_roundtrip_single_message(self):
        decoder = FrameDecoder()
        message = ("ack", 7, 0, {"square": 4}, 0, [], [])
        assert decoder.feed(encode_frame(message)) == [message]
        assert decoder.pending_bytes == 0

    def test_multiple_messages_in_one_feed(self):
        messages = [("batch", i, [("a", 0, "s", None, (i,))]) for i in range(5)]
        blob = b"".join(encode_frame(m) for m in messages)
        assert FrameDecoder().feed(blob) == messages

    def test_byte_at_a_time_feed(self):
        messages = [("stop",), ("snapshot", 3), ("ack", 0, 1)]
        blob = b"".join(encode_frame(m) for m in messages)
        decoder, received = FrameDecoder(), []
        for i in range(len(blob)):
            received.extend(decoder.feed(blob[i : i + 1]))
        assert received == messages
        assert decoder.pending_bytes == 0

    def test_partial_frame_stays_buffered(self):
        frame = encode_frame(("stop",))
        decoder = FrameDecoder()
        assert decoder.feed(frame[:-1]) == []
        assert decoder.pending_bytes == len(frame) - 1
        assert decoder.feed(frame[-1:]) == [("stop",)]


class TestBufferFrames:
    def test_payload_roundtrip(self):
        frame = BufferFrame(("cbatch", 3, "env"), [b"\x01\x02", b"", b"abc"])
        decoded = decode_buffer_payload(frame.to_bytes()[4:])
        assert decoded.envelope == ("cbatch", 3, "env")
        assert [bytes(view) for view in decoded.buffers] == [b"\x01\x02", b"", b"abc"]

    def test_decoder_handles_mixed_frame_kinds(self):
        frame = BufferFrame({"seq": 1}, [b"columns"])
        blob = encode_frame(("stop",)) + frame.to_bytes() + encode_frame(("ack", 2))
        decoder, received = FrameDecoder(), []
        for i in range(len(blob)):  # worst case: byte-at-a-time delivery
            received.extend(decoder.feed(blob[i : i + 1]))
        assert received[0] == ("stop",)
        assert received[2] == ("ack", 2)
        middle = received[1]
        assert isinstance(middle, BufferFrame)
        assert middle.envelope == {"seq": 1}
        assert bytes(middle.buffers[0]) == b"columns"

    def test_parts_concatenate_to_the_wire_bytes(self):
        # sendmsg ships parts() as-is; they must equal the contiguous form
        frame = BufferFrame((1, 2), [bytes(range(10)), b"x" * 100])
        assert b"".join(bytes(p) for p in frame.parts()) == frame.to_bytes()

    def test_frames_are_stable_across_re_serialization(self):
        # journal replay guarantee: the same frame always produces the
        # same bytes, and a pickled copy (pipe fallback) still matches
        import pickle

        frame = BufferFrame(("cbatch", 9), [b"\x00" * 16])
        first = frame.to_bytes()
        assert frame.to_bytes() == first
        clone = pickle.loads(pickle.dumps(frame))
        assert clone.to_bytes() == first

    def test_release_drops_borrowed_views(self):
        frame = BufferFrame((), [b"data"])
        payload = frame.to_bytes()[4:]
        decoded = decode_buffer_payload(memoryview(payload))
        decoded.release()
        assert decoded.buffers == []


class TestAddresses:
    def test_parse_host_port(self):
        assert parse_address("10.0.0.5:7777") == ("10.0.0.5", 7777)

    def test_empty_host_means_local(self):
        assert parse_address(":0") == ("127.0.0.1", 0)

    def test_attach_scheme_is_stripped(self):
        assert parse_address("tcp://worker-3:6000") == ("worker-3", 6000)
        assert is_attach_address("tcp://worker-3:6000")
        assert not is_attach_address("worker-3:6000")

    @pytest.mark.parametrize("bad", ["nocolon", "host:notaport", "host:70000"])
    def test_malformed_addresses_raise(self, bad):
        with pytest.raises(ValueError):
            parse_address(bad)

    def test_banner_roundtrip(self):
        assert parse_banner(format_banner("127.0.0.1", 40123)) == (
            "127.0.0.1",
            40123,
        )

    @pytest.mark.parametrize(
        "noise",
        ["", "warning: something", "REPRO-WORKER LISTENING", "REPRO-WORKER LISTENING h p"],
    )
    def test_banner_ignores_noise(self, noise):
        assert parse_banner(noise) is None


# ----------------------------------------------------------------------
# Transport registry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_both_transports_are_registered(self):
        names = available_transports()
        assert "pipe" in names and "socket" in names

    def test_make_transport_builds_instances(self):
        for name in ("pipe", "socket"):
            transport = make_transport(name)
            assert isinstance(transport, Transport)
            assert transport.name == name
            assert transport.stats() == {"transport": name, "reconnects": 0}
            transport.close()

    def test_unknown_transport_raises(self):
        with pytest.raises(TopologyError, match="unknown transport"):
            make_transport("carrier-pigeon")

    def test_pipe_transport_rejects_addresses(self):
        with pytest.raises(TopologyError):
            make_transport("pipe", addresses=("127.0.0.1:1234",))


# ----------------------------------------------------------------------
# Redesigned configuration surface
# ----------------------------------------------------------------------
class TestConfigSurface:
    def test_parallel_workers_spelling_is_gone(self):
        # the PR 6 deprecation shim served its release; ``workers`` is
        # the only spelling now
        with pytest.raises(TypeError, match="parallel_workers"):
            StreamJoinConfig(m=4, backend="parallel", parallel_workers=2)
        with pytest.raises(TypeError, match="parallel_workers"):
            ExperimentConfig(
                dataset="rwData", backend="parallel", parallel_workers=2
            )

    def test_workers_alone_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            config = StreamJoinConfig(m=4, backend="parallel", workers=2)
        assert config.workers == 2

    def test_worker_count_must_be_positive(self):
        with pytest.raises(PartitioningError, match="workers"):
            StreamJoinConfig(m=4, workers=0)

    def test_unknown_transport_rejected(self):
        with pytest.raises(PartitioningError, match="unknown transport"):
            StreamJoinConfig(m=4, transport="smoke-signals")

    def test_addresses_require_socket_transport(self):
        with pytest.raises(PartitioningError, match="socket"):
            StreamJoinConfig(m=4, workers=["127.0.0.1:0"])

    def test_address_list_normalizes_to_tuple(self):
        config = StreamJoinConfig(
            m=4, transport="socket", workers=["127.0.0.1:0", ":0"]
        )
        assert config.workers == ("127.0.0.1:0", ":0")
        hash(config)  # experiment caches key on the config

    def test_malformed_address_rejected(self):
        with pytest.raises(PartitioningError):
            StreamJoinConfig(m=4, transport="socket", workers=["nocolon"])

    def test_cluster_rejects_workers_and_n_workers_together(self):
        builder = TopologyBuilder()
        builder.set_spout("src", lambda: TickingNumberSpout(1))
        with pytest.raises(TopologyError, match="not both"):
            ParallelCluster(builder.build(), workers=2, n_workers=2)


class TestCliWorkersArgument:
    def test_count(self):
        assert _workers_argument("4") == 4

    def test_address_list(self):
        assert _workers_argument("host-a:7000, host-b:7001") == (
            "host-a:7000",
            "host-b:7001",
        )

    def test_single_address(self):
        assert _workers_argument("tcp://host-a:7000") == ("tcp://host-a:7000",)

    @pytest.mark.parametrize("bad", ["bogus", ","])
    def test_garbage_rejected(self, bad):
        with pytest.raises(argparse.ArgumentTypeError):
            _workers_argument(bad)


# ----------------------------------------------------------------------
# Conformance suite: the contract every transport must satisfy
# ----------------------------------------------------------------------
class TickingNumberSpout(Spout):
    """Emits 0..n-1 with a barrier tick every ``period`` numbers."""

    def __init__(self, n: int, period: int = 10):
        self.n, self.period, self._i = n, period, 0

    def next_tuple(self, collector) -> bool:
        if self._i >= self.n:
            return False
        collector.emit("numbers", (self._i,))
        self._i += 1
        if self._i % self.period == 0:
            collector.emit("tick", (self._i,))
        return self._i < self.n


class SquareBolt(Bolt):
    def process(self, tup, collector) -> None:
        if tup.stream == "numbers":
            collector.emit("squares", (tup.values[0] ** 2,))


class CollectBolt(Bolt):
    def __init__(self):
        self.values: list[int] = []

    def process(self, tup, collector) -> None:
        self.values.append(tup.values[0])


def _square_topology(collector: CollectBolt, n: int = 50):
    builder = TopologyBuilder()
    builder.set_spout("src", lambda: TickingNumberSpout(n))
    square = builder.set_bolt("square", SquareBolt, parallelism=2)
    square.subscribe("src", "numbers", FieldsGrouping(key=0))
    square.subscribe("src", "tick", AllGrouping())
    builder.set_bolt("collect", lambda: collector).subscribe(
        "square", "squares", GlobalGrouping()
    )
    return builder.build()


def _clean_reference(n: int = 50) -> list[int]:
    collector = CollectBolt()
    with LocalCluster(_square_topology(collector, n)) as cluster:
        cluster.run()
    return sorted(collector.values)


class _LinkDictCodec:
    """Stateful per-link dictionary codec for the conformance suite.

    The first sighting of a value ships a definition, repeats ship only
    the id.  Decoding an id the decoder has never seen raises
    ``KeyError`` — so a journal replayed *without* re-encoding against a
    replacement worker's fresh codec state cannot pass silently.
    """

    def __init__(self):
        self._ids: dict = {}
        self._values: dict = {}

    def encode(self, stream, values):
        encoded = []
        for value in values:
            if value in self._ids:
                encoded.append(("ref", self._ids[value]))
            else:
                idx = len(self._ids)
                self._ids[value] = idx
                encoded.append(("def", idx, value))
        return tuple(encoded)

    def decode(self, stream, values):
        decoded = []
        for entry in values:
            if entry[0] == "def":
                self._values[entry[1]] = entry[2]
                decoded.append(entry[2])
            else:
                decoded.append(self._values[entry[1]])
        return tuple(decoded)


class _TestCodec:
    """Identity on the (stateless) emit channel, dictionary per link."""

    def encode(self, stream, values):
        return values

    def decode(self, stream, values):
        return values

    def link_codec(self):
        return _LinkDictCodec()


#: zero-backoff restart policy so recovery cases stay fast
FAST_RESTART = RestartPolicy(max_restarts_per_window=3, backoff_base_s=0.0, jitter=0.0)


class TransportConformance:
    """Shared cases; subclasses pick the transport (and the marker)."""

    TRANSPORT = "unset"

    def _cluster(self, collector: CollectBolt, n: int = 50, **kwargs) -> ParallelCluster:
        return ParallelCluster(
            _square_topology(collector, n),
            remote_components=("square",),
            barrier_streams=("tick",),
            transport=self.TRANSPORT,
            workers=2,
            batch_size=4,
            **kwargs,
        )

    def test_clean_run_matches_local(self):
        clean = _clean_reference()
        collector = CollectBolt()
        with self._cluster(collector) as cluster:
            cluster.run()
            stats = cluster.stats()
        assert sorted(collector.values) == clean
        assert stats["transport"] == self.TRANSPORT
        assert stats["reconnects"] == 0
        assert stats["worker_restarts"] == 0

    def test_barrier_flush_releases_everything(self):
        """After a run every shipped batch is acked and every stashed
        emission released — nothing in flight, nothing buffered."""
        collector = CollectBolt()
        with self._cluster(collector) as cluster:
            cluster.run()
            for handle in cluster._workers:
                assert not handle.pending
                assert not handle.buffer
        assert len(collector.values) == 50

    def test_mid_pipeline_kill_is_byte_identical(self):
        """Kill a worker while one window's acks are still draining and
        the next window's frames are already staged on the corked link:
        the journal replay must cover both windows — the acked-but-
        unreleased one and the staged one — and results stay identical
        to the local reference."""
        clean = _clean_reference(n=80)
        collector = CollectBolt()
        cluster = self._cluster(
            collector,
            n=80,
            restart_policy=FAST_RESTART,
            # dies on receipt of batch 6 — inside the second window's
            # batch range, while the first window's barrier can still
            # be outstanding under the default pipeline depth
            fault_plan=FaultPlan().kill_worker(1, after_batches=5),
        )
        with cluster:
            cluster.run()
            stats = cluster.stats()
        assert sorted(collector.values) == clean
        assert stats["worker_restarts"] == 1
        assert stats["reconnects"] == 1

    def test_corked_links_drain_by_end_of_run(self):
        """Staged (corked) writes must all reach the kernel by the time
        the run's final drain returns — nothing parked parent-side."""
        collector = CollectBolt()
        with self._cluster(collector) as cluster:
            cluster.run()
            for handle in cluster._workers:
                link = handle.link
                if link is None:
                    continue
                assert not getattr(link, "_pending", ())
        assert len(collector.values) == 50

    def test_reconnect_reencodes_journal(self):
        """A replacement worker's journal replay must be re-encoded with
        the fresh link codec — stale dictionary state would KeyError."""
        clean = _clean_reference()
        collector = CollectBolt()
        cluster = self._cluster(
            collector,
            codec=_TestCodec(),
            restart_policy=FAST_RESTART,
            fault_plan=FaultPlan().kill_worker(0, after_batches=1),
        )
        with cluster:
            cluster.run()
            stats = cluster.stats()
        assert sorted(collector.values) == clean
        assert stats["worker_restarts"] == 1
        assert stats["reconnects"] == 1

    def test_replayed_frames_are_bit_identical(self):
        """With the columnar frame codec the journal stores encoded
        frames; a replacement worker's replay ships the stored frame
        verbatim — the replayed wire bytes equal the first send's."""
        clean = _clean_reference()
        collector = CollectBolt()
        cluster = self._cluster(
            collector,
            codec=ColumnarWireCodec(),
            restart_policy=FAST_RESTART,
            fault_plan=FaultPlan().kill_worker(0, after_batches=1),
        )
        first_send: dict = {}
        replayed: list = []

        class RecordingLink:
            def __init__(self, link):
                self._link = link

            def _record(self, message):
                if isinstance(message, BufferFrame):
                    seq = message.envelope[1]
                    wire = message.to_bytes()
                    if seq in first_send:
                        replayed.append((seq, wire))
                    else:
                        first_send[seq] = wire

            def send(self, message):
                self._record(message)
                self._link.send(message)

            def stage(self, message):
                self._record(message)
                self._link.stage(message)

            def __getattr__(self, name):
                return getattr(self._link, name)

        inner_spawn = cluster._transport.spawn
        cluster._transport.spawn = lambda init: RecordingLink(inner_spawn(init))
        with cluster:
            cluster.run()
            stats = cluster.stats()
        assert sorted(collector.values) == clean
        assert stats["worker_restarts"] == 1
        assert replayed, "the kill must have forced a frame replay"
        for seq, wire in replayed:
            assert wire == first_send[seq]

    def test_stats_schema_is_unified(self):
        collector = CollectBolt()
        with self._cluster(collector) as cluster:
            cluster.run()
            stats = cluster.stats()
        local = CollectBolt()
        with LocalCluster(_square_topology(local)) as reference:
            reference.run()
            assert set(stats) == set(reference.stats())

    def test_close_is_idempotent_and_reaps_all_workers(self):
        collector = CollectBolt()
        cluster = self._cluster(collector, n=20)
        cluster.run()
        cluster.close()
        assert all(handle.link is None for handle in cluster._workers)
        cluster.close()  # second close must be a no-op, not an error

    def test_close_without_start_is_safe(self):
        cluster = self._cluster(CollectBolt())
        cluster.close()
        cluster.close()


@pytest.mark.parallel
class TestPipeConformance(TransportConformance):
    TRANSPORT = "pipe"


@pytest.mark.distributed
class TestSocketConformance(TransportConformance):
    TRANSPORT = "socket"


class TestSocketSmoke:
    """Tier-1: one real TCP worker end to end, kept deliberately tiny."""

    def test_single_socket_worker_matches_local(self):
        clean = _clean_reference(n=20)
        collector = CollectBolt()
        with ParallelCluster(
            _square_topology(collector, n=20),
            remote_components=("square",),
            barrier_streams=("tick",),
            transport="socket",
            workers=1,
            batch_size=4,
        ) as cluster:
            cluster.run()
            stats = cluster.stats()
        assert sorted(collector.values) == clean
        assert stats["transport"] == "socket"
        assert stats["reconnects"] == 0
