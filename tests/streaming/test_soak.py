"""Unit tests for the soak package: rate ramp, memory bound, driver."""

import pytest

from repro.data.zoo import ZipfSkewGenerator
from repro.obs.registry import MetricsRegistry, histogram_quantile
from repro.soak import (
    MemoryMonitor,
    RateController,
    SoakConfig,
    check_monotonic,
    endless_windows,
    rss_bytes,
    run_soak,
)
from repro.soak.driver import E2E_BUCKETS


class TestEndlessWindows:
    def test_yields_forever_and_advances_the_stream(self):
        stream = endless_windows(ZipfSkewGenerator(seed=1), window_size=10)
        first = next(stream)
        second = next(stream)
        assert len(first) == len(second) == 10
        assert second[0].doc_id == 10  # continued, not restarted

    def test_rejects_nonpositive_window(self):
        with pytest.raises(ValueError):
            next(endless_windows(ZipfSkewGenerator(seed=1), window_size=0))


class TestRateController:
    def test_ramps_while_keeping_up(self):
        controller = RateController(initial_rate=100, ramp_factor=2.0)
        assert controller.offered_rate() == 100
        controller.record_epoch(100)
        assert controller.offered_rate() == 200
        controller.record_epoch(500)  # over-achieving still just doubles
        assert controller.offered_rate() == 400
        assert not controller.saturated

    def test_saturation_freezes_the_ramp(self):
        controller = RateController(
            initial_rate=100, ramp_factor=2.0, saturation_threshold=0.9
        )
        controller.record_epoch(100)
        controller.record_epoch(150)  # 150 < 200 * 0.9 -> saturated
        assert controller.saturated
        assert controller.offered_rate() == 200
        # sustained is the best achieved, not the offered rate
        assert controller.sustained == 150

    def test_max_rate_caps_the_ramp(self):
        controller = RateController(initial_rate=100, max_rate=250)
        controller.record_epoch(100)
        controller.record_epoch(200)
        assert controller.offered_rate() == 250

    def test_history_and_dict_roundtrip(self):
        controller = RateController(initial_rate=50)
        controller.record_epoch(60)
        data = controller.as_dict()
        assert data["epochs"] == [{"offered": 50, "achieved": 60}]
        assert data["sustained_docs_per_sec"] == 60

    def test_validation(self):
        with pytest.raises(ValueError):
            RateController(initial_rate=0)
        with pytest.raises(ValueError):
            RateController(ramp_factor=1.0)
        with pytest.raises(ValueError):
            RateController(saturation_threshold=0.0)
        with pytest.raises(ValueError):
            RateController(initial_rate=10).record_epoch(-1)


class TestMemoryMonitor:
    def test_rss_is_readable_here(self):
        value = rss_bytes()
        assert value is not None and value > 1024 * 1024

    def test_flat_samples_pass(self):
        monitor = MemoryMonitor(growth_tolerance=0.1, slack_bytes=0)
        monitor.samples = [100_000_000, 101_000_000, 100_500_000]
        check = monitor.check()
        assert check.ok and not check.skipped
        assert check.baseline_bytes == 101_000_000  # first post-warmup

    def test_growth_past_bound_fails(self):
        monitor = MemoryMonitor(growth_tolerance=0.1, slack_bytes=0)
        monitor.samples = [100_000_000, 100_000_000, 150_000_000]
        check = monitor.check()
        assert not check.ok
        assert "grew past the bound" in check.reason

    def test_warmup_growth_is_exempt(self):
        monitor = MemoryMonitor(
            growth_tolerance=0.1, slack_bytes=0, warmup_samples=2
        )
        # big jump inside warmup, flat afterwards
        monitor.samples = [50_000_000, 90_000_000, 100_000_000, 101_000_000]
        assert monitor.check().ok

    def test_absolute_limit(self):
        monitor = MemoryMonitor(
            growth_tolerance=10.0, limit_bytes=120_000_000
        )
        monitor.samples = [100_000_000, 130_000_000]
        check = monitor.check()
        assert not check.ok
        assert "absolute limit" in check.reason

    def test_no_samples_is_a_skip(self):
        check = MemoryMonitor().check()
        assert check.ok and check.skipped


class TestMonotonicCheck:
    def test_first_snapshot_has_no_violations(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        assert check_monotonic(None, registry.snapshot()) == []

    def test_counter_regression_detected(self):
        before = MetricsRegistry()
        before.counter("a").inc(5)
        after = MetricsRegistry()
        after.counter("a").inc(3)
        violations = check_monotonic(before.snapshot(), after.snapshot())
        assert violations and "went backward" in violations[0]

    def test_disappearing_series_detected(self):
        before = MetricsRegistry()
        before.counter("a").inc()
        violations = check_monotonic(
            before.snapshot(), MetricsRegistry().snapshot()
        )
        assert violations == ["counter a disappeared"]

    def test_histogram_count_regression_detected(self):
        before = MetricsRegistry()
        h = before.histogram("lat", buckets=E2E_BUCKETS)
        h.observe(0.2)
        h.observe(0.3)
        after = MetricsRegistry()
        after.histogram("lat", buckets=E2E_BUCKETS).observe(0.2)
        violations = check_monotonic(before.snapshot(), after.snapshot())
        assert violations and "count went backward" in violations[0]

    def test_growth_is_fine(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        first = registry.snapshot()
        registry.counter("a").inc()
        registry.counter("b").inc()  # new series may appear
        assert check_monotonic(first, registry.snapshot()) == []


class TestHistogramQuantiles:
    def test_quantiles_are_ordered_and_bounded(self):
        registry = MetricsRegistry()
        h = registry.histogram("lat", buckets=E2E_BUCKETS)
        for i in range(1, 101):
            h.observe(i / 100.0)  # 0.01 .. 1.00
        p50 = histogram_quantile(h.as_dict(), 0.50)
        p99 = histogram_quantile(h.as_dict(), 0.99)
        assert 0.01 <= p50 <= p99 <= 1.0
        assert p50 == pytest.approx(0.5, abs=0.2)

    def test_empty_histogram_is_none(self):
        registry = MetricsRegistry()
        h = registry.histogram("lat", buckets=E2E_BUCKETS)
        assert histogram_quantile(h.as_dict(), 0.5) is None


class TestRunSoak:
    def test_short_local_soak_report_shape(self):
        config = SoakConfig(
            workload="zipf",
            initial_rate=200,
            window_seconds=0.1,
            epoch_windows=2,
            max_windows=6,
            stop_at_saturation=False,
        )
        report = run_soak(config)
        assert report.windows == 6
        assert report.epochs == 3
        assert report.documents > 0
        assert report.stop_reason == "max_windows"
        assert report.sustained_docs_per_sec > 0
        assert report.p50_s is not None and report.p99_s >= report.p50_s
        assert report.obs_monotonic
        assert report.memory is not None
        data = report.as_dict()
        assert data["healthy"] == report.healthy
        assert len(data["ramp"]) == report.epochs

    def test_saturation_stops_the_run(self):
        config = SoakConfig(
            workload="burst",
            initial_rate=500,
            window_seconds=0.2,
            epoch_windows=2,
            max_seconds=20,
        )
        report = run_soak(config)
        assert report.stop_reason in ("saturated", "max_seconds")
        if report.stop_reason == "saturated":
            assert report.saturated

    def test_explicit_generator_overrides_workload(self):
        config = SoakConfig(workload="ignored", max_windows=2, initial_rate=100)
        report = run_soak(config, generator=ZipfSkewGenerator(seed=1))
        assert report.windows == 2

    def test_unknown_workload_rejected(self):
        with pytest.raises(ValueError, match="unknown workload"):
            run_soak(SoakConfig(workload="nope", max_windows=1))

    def test_window_cap_honored_mid_epoch(self):
        config = SoakConfig(
            workload="drift",
            initial_rate=100,
            epoch_windows=10,
            max_windows=3,
            stop_at_saturation=False,
        )
        report = run_soak(config)
        assert report.windows == 3
