"""Unit tests for component context plumbing."""

import pytest

from repro.streaming.component import ComponentContext


class TestComponentContext:
    def test_own_fields(self):
        context = ComponentContext("joiner", 2, 4, {"joiner": 4, "assigner": 2})
        assert context.component == "joiner"
        assert context.task_index == 2
        assert context.parallelism == 4

    def test_parallelism_of_other_component(self):
        context = ComponentContext("joiner", 0, 4, {"joiner": 4, "assigner": 2})
        assert context.parallelism_of("assigner") == 2

    def test_unknown_component_raises(self):
        context = ComponentContext("joiner", 0, 4, {"joiner": 4})
        with pytest.raises(KeyError):
            context.parallelism_of("ghost")
