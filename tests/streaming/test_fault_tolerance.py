"""Tests for the executor's guaranteed-delivery retry mechanism."""

import pytest

from repro.exceptions import TupleProcessingError
from repro.streaming.component import Bolt, Spout
from repro.streaming.executor import LocalCluster
from repro.streaming.grouping import GlobalGrouping
from repro.streaming.topology import TopologyBuilder


class NumberSpout(Spout):
    def __init__(self, n: int = 5):
        self.n, self._i = n, 0

    def next_tuple(self, collector) -> bool:
        if self._i >= self.n:
            return False
        collector.emit("numbers", (self._i,))
        self._i += 1
        return self._i < self.n


class FlakyBolt(Bolt):
    """Fails the first ``failures_per_tuple`` deliveries of every tuple."""

    def __init__(self, failures_per_tuple: int = 2):
        self.failures_per_tuple = failures_per_tuple
        self._attempts: dict[int, int] = {}
        self.seen: list[int] = []

    def process(self, tup, collector) -> None:
        value = tup.values[0]
        attempts = self._attempts.get(value, 0)
        self._attempts[value] = attempts + 1
        if attempts < self.failures_per_tuple:
            raise RuntimeError(f"transient failure on {value}")
        self.seen.append(value)


def _build(flaky: FlakyBolt):
    builder = TopologyBuilder()
    builder.set_spout("src", lambda: NumberSpout(5))
    builder.set_bolt("flaky", lambda: flaky).subscribe(
        "src", "numbers", GlobalGrouping()
    )
    return builder.build()


class TestRetries:
    def test_transient_failures_are_replayed(self):
        flaky = FlakyBolt(failures_per_tuple=2)
        cluster = LocalCluster(_build(flaky), max_retries=3)
        cluster.run()
        assert flaky.seen == [0, 1, 2, 3, 4]  # every tuple delivered, in order
        assert cluster.failures == 10  # 2 failed attempts per tuple

    def test_retry_budget_exhaustion_raises(self):
        flaky = FlakyBolt(failures_per_tuple=5)
        cluster = LocalCluster(_build(flaky), max_retries=2)
        with pytest.raises(TupleProcessingError) as excinfo:
            cluster.run()
        assert excinfo.value.component == "flaky"
        assert excinfo.value.retries == 2

    def test_no_retries_by_default(self):
        flaky = FlakyBolt(failures_per_tuple=1)
        cluster = LocalCluster(_build(flaky))
        with pytest.raises(TupleProcessingError):
            cluster.run()

    def test_successful_processing_counts_once(self):
        flaky = FlakyBolt(failures_per_tuple=1)
        cluster = LocalCluster(_build(flaky), max_retries=1)
        cluster.run()
        assert cluster.processed == 5  # retries do not inflate the count

    def test_stream_join_survives_transient_joiner_failures(self):
        """End-to-end: a Joiner that fails sporadically still yields the
        exact join result under replay (probe-then-insert is idempotent
        per delivery because the failure happens before any mutation)."""
        from repro.data.serverlogs import ServerLogGenerator
        from repro.join.base import brute_force_pairs
        from repro.topology.joiner import JoinerBolt
        from repro.topology.pipeline import StreamJoinConfig, build_topology
        from repro.topology.sink import MetricsSinkBolt
        from repro.topology import messages as msg

        class SometimesFailingJoiner(JoinerBolt):
            _count = 0

            def process(self, tup, collector):
                type(self)._count += 1
                if tup.stream == msg.ASSIGNED and type(self)._count % 13 == 0:
                    type(self)._count += 1  # fail once, succeed on replay
                    raise RuntimeError("injected joiner crash")
                super().process(tup, collector)

        generator = ServerLogGenerator(seed=31)
        windows = [generator.next_window(120) for _ in range(2)]
        config = StreamJoinConfig(
            m=2, algorithm="AG", n_assigners=2,
            compute_joins=True, collect_pairs=True,
        )
        topology = build_topology(config, windows)
        topology.components[msg.JOINER].factory = lambda: SometimesFailingJoiner(
            compute_joins=True, collect_pairs=True
        )
        cluster = LocalCluster(topology, max_retries=2)
        cluster.run()
        assert cluster.failures > 0  # the injection actually fired
        sink = cluster.tasks(msg.SINK)[0]
        assert isinstance(sink, MetricsSinkBolt)
        truth = set()
        for window in windows:
            truth |= brute_force_pairs(window)
        assert sink.join_pairs == truth
