"""Tests for the executor's guaranteed-delivery retry mechanism and the
dead-letter quarantine that caps it."""

import pytest

from repro.exceptions import TupleProcessingError
from repro.faults import FaultPlan, InjectedFault
from repro.obs.registry import MetricsRegistry
from repro.streaming.component import Bolt, Spout
from repro.streaming.executor import LocalCluster
from repro.streaming.grouping import GlobalGrouping
from repro.streaming.recovery import DeadLetterQueue
from repro.streaming.topology import TopologyBuilder


class NumberSpout(Spout):
    def __init__(self, n: int = 5):
        self.n, self._i = n, 0

    def next_tuple(self, collector) -> bool:
        if self._i >= self.n:
            return False
        collector.emit("numbers", (self._i,))
        self._i += 1
        return self._i < self.n


class FlakyBolt(Bolt):
    """Fails the first ``failures_per_tuple`` deliveries of every tuple."""

    def __init__(self, failures_per_tuple: int = 2):
        self.failures_per_tuple = failures_per_tuple
        self._attempts: dict[int, int] = {}
        self.seen: list[int] = []

    def process(self, tup, collector) -> None:
        value = tup.values[0]
        attempts = self._attempts.get(value, 0)
        self._attempts[value] = attempts + 1
        if attempts < self.failures_per_tuple:
            raise RuntimeError(f"transient failure on {value}")
        self.seen.append(value)


def _build(flaky: FlakyBolt):
    builder = TopologyBuilder()
    builder.set_spout("src", lambda: NumberSpout(5))
    builder.set_bolt("flaky", lambda: flaky).subscribe(
        "src", "numbers", GlobalGrouping()
    )
    return builder.build()


class TestRetries:
    def test_transient_failures_are_replayed(self):
        flaky = FlakyBolt(failures_per_tuple=2)
        cluster = LocalCluster(_build(flaky), max_retries=3)
        cluster.run()
        assert flaky.seen == [0, 1, 2, 3, 4]  # every tuple delivered, in order
        assert cluster.failures == 10  # 2 failed attempts per tuple

    def test_retry_budget_exhaustion_raises(self):
        flaky = FlakyBolt(failures_per_tuple=5)
        cluster = LocalCluster(_build(flaky), max_retries=2)
        with pytest.raises(TupleProcessingError) as excinfo:
            cluster.run()
        assert excinfo.value.component == "flaky"
        assert excinfo.value.retries == 2

    def test_no_retries_by_default(self):
        flaky = FlakyBolt(failures_per_tuple=1)
        cluster = LocalCluster(_build(flaky))
        with pytest.raises(TupleProcessingError):
            cluster.run()

    def test_successful_processing_counts_once(self):
        flaky = FlakyBolt(failures_per_tuple=1)
        cluster = LocalCluster(_build(flaky), max_retries=1)
        cluster.run()
        assert cluster.processed == 5  # retries do not inflate the count

    def test_dead_letter_queue_quarantines_instead_of_raising(self):
        flaky = FlakyBolt(failures_per_tuple=5)  # outlasts any retry budget
        dlq = DeadLetterQueue()
        cluster = LocalCluster(_build(flaky), max_retries=2, dead_letters=dlq)
        cluster.run()  # no raise: poisoned tuples are skipped
        assert flaky.seen == []  # every tuple kept failing
        assert cluster.stats()["dead_letters"] == 5
        letter = dlq.entries[0]
        assert letter.component == "flaky"
        assert letter.stream == "numbers"
        assert letter.attempts == 2
        assert "transient failure" in letter.cause
        assert "RuntimeError" in letter.traceback  # full worker traceback
        assert letter.worker is None  # quarantined in the parent process
        assert letter.values_repr == "(0,)"

    def test_dead_letters_skip_only_poisoned_tuples(self):
        flaky = FlakyBolt(failures_per_tuple=1)
        dlq = DeadLetterQueue()
        cluster = LocalCluster(_build(flaky), dead_letters=dlq)  # no retries
        cluster.run()
        # with zero retries every first delivery fails and is quarantined
        assert cluster.stats()["dead_letters"] == 5
        assert cluster.processed == 0

    def test_dead_letter_limit_bounds_entries_not_total(self):
        flaky = FlakyBolt(failures_per_tuple=99)
        dlq = DeadLetterQueue(limit=2)
        cluster = LocalCluster(_build(flaky), dead_letters=dlq)
        cluster.run()
        assert dlq.total == 5  # the count keeps growing
        assert len(dlq) == 2  # only the newest entries are retained
        assert [letter.values_repr for letter in dlq] == ["(3,)", "(4,)"]

    def test_dead_letters_counter_reaches_registry(self):
        flaky = FlakyBolt(failures_per_tuple=99)
        registry = MetricsRegistry()
        cluster = LocalCluster(
            _build(flaky), dead_letters=DeadLetterQueue(), registry=registry
        )
        cluster.run()
        snapshot = registry.snapshot()
        assert snapshot.counters["executor.dead_letters{component=flaky}"] == 5


class TestLocalFaultInjection:
    def test_fault_plan_raises_in_local_bolt(self):
        flaky = FlakyBolt(failures_per_tuple=0)
        plan = FaultPlan().raise_in("flaky", nth=2, sticky=False)
        cluster = LocalCluster(_build(flaky), fault_plan=plan)
        with pytest.raises(TupleProcessingError) as excinfo:
            cluster.run()
        assert isinstance(excinfo.value.cause, InjectedFault)

    def test_sticky_fault_exhausts_retries_into_quarantine(self):
        flaky = FlakyBolt(failures_per_tuple=0)
        dlq = DeadLetterQueue()
        plan = FaultPlan().raise_in("flaky", nth=2)  # sticky by default
        cluster = LocalCluster(
            _build(flaky), max_retries=3, dead_letters=dlq, fault_plan=plan
        )
        cluster.run()
        assert dlq.total == 1
        assert dlq.entries[0].attempts == 3
        assert flaky.seen == [0, 2, 3, 4]  # only the poison tuple is lost

    def test_non_sticky_fault_heals_on_retry(self):
        flaky = FlakyBolt(failures_per_tuple=0)
        plan = FaultPlan().raise_in("flaky", nth=2, sticky=False)
        cluster = LocalCluster(_build(flaky), max_retries=1, fault_plan=plan)
        cluster.run()
        assert flaky.seen == [0, 1, 2, 3, 4]
        assert cluster.failures == 1

    def test_stream_join_survives_transient_joiner_failures(self):
        """End-to-end: a Joiner that fails sporadically still yields the
        exact join result under replay (probe-then-insert is idempotent
        per delivery because the failure happens before any mutation)."""
        from repro.data.serverlogs import ServerLogGenerator
        from repro.join.base import brute_force_pairs
        from repro.topology.joiner import JoinerBolt
        from repro.topology.pipeline import StreamJoinConfig, build_topology
        from repro.topology.sink import MetricsSinkBolt
        from repro.topology import messages as msg

        class SometimesFailingJoiner(JoinerBolt):
            _count = 0

            def process(self, tup, collector):
                type(self)._count += 1
                if tup.stream == msg.ASSIGNED and type(self)._count % 13 == 0:
                    type(self)._count += 1  # fail once, succeed on replay
                    raise RuntimeError("injected joiner crash")
                super().process(tup, collector)

        generator = ServerLogGenerator(seed=31)
        windows = [generator.next_window(120) for _ in range(2)]
        config = StreamJoinConfig(
            m=2, algorithm="AG", n_assigners=2,
            compute_joins=True, collect_pairs=True,
        )
        topology = build_topology(config, windows)
        topology.components[msg.JOINER].factory = lambda: SometimesFailingJoiner(
            compute_joins=True, collect_pairs=True
        )
        cluster = LocalCluster(topology, max_retries=2)
        cluster.run()
        assert cluster.failures > 0  # the injection actually fired
        sink = cluster.tasks(msg.SINK)[0]
        assert isinstance(sink, MetricsSinkBolt)
        truth = set()
        for window in windows:
            truth |= brute_force_pairs(window)
        assert sink.join_pairs == truth
