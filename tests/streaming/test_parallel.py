"""Tests for the process-parallel execution backend.

The small smoke case runs in tier-1; the heavier cases carry the
``parallel`` marker and run via ``make test-parallel`` (or
``pytest -m parallel``).
"""

import os

import pytest

from repro.exceptions import TopologyError, TupleProcessingError
from repro.faults import FaultPlan
from repro.obs.registry import MetricsRegistry
from repro.streaming.component import Bolt, Spout
from repro.streaming.executor import LocalCluster
from repro.streaming.grouping import AllGrouping, FieldsGrouping, GlobalGrouping
from repro.streaming.parallel import ParallelCluster
from repro.streaming.topology import TopologyBuilder


class NumberSpout(Spout):
    def __init__(self, n: int):
        self.n, self._i = n, 0

    def next_tuple(self, collector) -> bool:
        if self._i >= self.n:
            return False
        collector.emit("numbers", (self._i,))
        self._i += 1
        return self._i < self.n


class SquareBolt(Bolt):
    """The remote worker: squares numbers, with optional instrumentation."""

    def prepare(self, context) -> None:
        self._counter = context.metrics.counter(
            "square.seen", task=str(context.task_index)
        )

    def process(self, tup, collector) -> None:
        self._counter.inc()
        collector.emit("squares", (tup.values[0] ** 2,))


class CollectBolt(Bolt):
    """The local sink: accumulates everything it receives."""

    def __init__(self):
        self.values: list[int] = []

    def process(self, tup, collector) -> None:
        self.values.append(tup.values[0])


class ExplodingBolt(Bolt):
    def process(self, tup, collector) -> None:
        raise ValueError(f"cannot process {tup.values[0]}")


class DyingBolt(Bolt):
    """Kills its whole process — simulates a worker crash, not a bug."""

    def process(self, tup, collector) -> None:
        if tup.values[0] == 3:
            os._exit(17)


class UnpicklableError(Exception):
    """Carries state the pickle module refuses to serialize."""

    def __init__(self):
        super().__init__("boom")
        self.payload = lambda: None  # lambdas do not pickle


class UnpicklableBolt(Bolt):
    def process(self, tup, collector) -> None:
        raise UnpicklableError()


def _square_topology(n: int, collector: CollectBolt, worker_cls=SquareBolt):
    builder = TopologyBuilder()
    builder.set_spout("src", lambda: NumberSpout(n))
    builder.set_bolt("square", worker_cls, parallelism=2).subscribe(
        "src", "numbers", FieldsGrouping(key=0)
    )
    builder.set_bolt("collect", lambda: collector).subscribe(
        "square", "squares", GlobalGrouping()
    )
    return builder.build()


class TestParallelSmoke:
    """Tier-1 smoke: the backend works and matches the local executor."""

    def test_results_and_stats_match_local(self):
        n = 20
        local_sink = CollectBolt()
        local = LocalCluster(_square_topology(n, local_sink))
        local.run()

        par_sink = CollectBolt()
        with ParallelCluster(
            _square_topology(n, par_sink),
            remote_components=("square",),
            n_workers=2,
            batch_size=4,
        ) as cluster:
            cluster.run()
            assert sorted(par_sink.values) == sorted(local_sink.values)
            par_stats = cluster.stats()
            local_stats = local.stats()
            # unified schema: same keys on every backend, only the
            # transport name itself legitimately differs
            assert set(par_stats) == set(local_stats)
            assert par_stats.pop("transport") == "pipe"
            assert local_stats.pop("transport") is None
            # load-signal gauges legitimately differ (the local backend
            # never ships batches, so its peaks stay zero)
            assert par_stats.pop("inflight_high_water") > 0
            assert par_stats.pop("journal_bytes") == 0  # drained at close
            local_stats.pop("inflight_high_water")
            local_stats.pop("journal_bytes")
            assert par_stats == local_stats
            assert par_stats["reconnects"] == 0

    def test_remote_tasks_are_not_inspectable(self):
        cluster = ParallelCluster(
            _square_topology(3, CollectBolt()), remote_components=("square",)
        )
        with pytest.raises(TopologyError):
            cluster.tasks("square")
        cluster.close()


@pytest.mark.parallel
class TestParallelBackend:
    def test_barrier_stream_flushes_batches(self):
        # with a huge batch size and no linger pressure, only the
        # barrier forces the partial batch out
        sink = CollectBolt()
        with ParallelCluster(
            _square_topology(10, sink),
            remote_components=("square",),
            barrier_streams=("numbers",),
            n_workers=2,
            batch_size=10_000,
        ) as cluster:
            cluster.run()
        assert sorted(sink.values) == [i**2 for i in range(10)]

    def test_pipeline_depths_agree(self):
        """``pipeline_depth=0`` (the synchronous pre-pipelining plane)
        and overlapped depths must produce identical results — the
        barrier release order is seq-deterministic either way."""
        results = {}
        for depth in (0, 1, 2):
            sink = CollectBolt()
            with ParallelCluster(
                _square_topology(40, sink),
                remote_components=("square",),
                barrier_streams=("numbers",),
                n_workers=2,
                batch_size=4,
                pipeline_depth=depth,
            ) as cluster:
                cluster.run()
            results[depth] = list(sink.values)
        assert results[0] == results[1] == results[2]

    def test_worker_snapshots_merge_into_parent(self):
        registry = MetricsRegistry()
        with ParallelCluster(
            _square_topology(12, CollectBolt()),
            remote_components=("square",),
            n_workers=2,
            registry=registry,
        ) as cluster:
            cluster.run()
            snapshot = cluster.snapshot()
        seen = sum(
            value
            for name, value in snapshot.counters.items()
            if name.startswith("square.seen")
        )
        assert seen == 12  # worker-side instruments survive the merge
        assert snapshot.counters["executor.processed{component=square}"] == 12
        hist = snapshot.histograms["executor.execute_seconds{component=square}"]
        assert hist["count"] == 12

    def test_spout_cannot_run_remotely(self):
        with pytest.raises(TopologyError):
            ParallelCluster(
                _square_topology(3, CollectBolt()), remote_components=("src",)
            )

    def test_retry_exhaustion_surfaces_from_worker(self):
        cluster = ParallelCluster(
            _square_topology(5, CollectBolt(), worker_cls=ExplodingBolt),
            remote_components=("square",),
            max_retries=2,
        )
        try:
            with pytest.raises(TupleProcessingError) as excinfo:
                cluster.run()
            assert excinfo.value.component == "square"
            assert excinfo.value.retries == 2
        finally:
            cluster.close()

    def test_worker_crash_raises_instead_of_hanging(self):
        cluster = ParallelCluster(
            _square_topology(8, CollectBolt(), worker_cls=DyingBolt),
            remote_components=("square",),
            n_workers=2,
            batch_size=1,
        )
        try:
            with pytest.raises(TupleProcessingError) as excinfo:
                cluster.run()
            assert excinfo.value.component == "square"
            assert "died" in str(excinfo.value.__cause__ or excinfo.value)
        finally:
            cluster.close()

    def test_broadcast_grouping_reaches_remote_tasks(self):
        builder = TopologyBuilder()
        builder.set_spout("src", lambda: NumberSpout(4))
        builder.set_bolt("square", SquareBolt, parallelism=3).subscribe(
            "src", "numbers", AllGrouping()
        )
        sink = CollectBolt()
        builder.set_bolt("collect", lambda: sink).subscribe(
            "square", "squares", GlobalGrouping()
        )
        with ParallelCluster(
            builder.build(), remote_components=("square",), n_workers=2
        ) as cluster:
            cluster.run()
        # every task saw every number
        assert sorted(sink.values) == sorted([i**2 for i in range(4)] * 3)


@pytest.mark.parallel
class TestFailureSurfacing:
    """Worker failures must arrive in the parent with full context and
    without leaking processes or pipes."""

    def test_error_carries_worker_and_batch_context(self):
        cluster = ParallelCluster(
            _square_topology(5, CollectBolt(), worker_cls=ExplodingBolt),
            remote_components=("square",),
            n_workers=2,
            batch_size=1,
        )
        try:
            with pytest.raises(TupleProcessingError) as excinfo:
                cluster.run()
            err = excinfo.value
            assert err.worker is not None
            assert err.batch_seq is not None
            assert f"worker {err.worker}" in str(err)
            assert f"batch seq {err.batch_seq}" in str(err)
        finally:
            cluster.close()

    def test_unpicklable_cause_preserves_worker_traceback(self):
        cluster = ParallelCluster(
            _square_topology(5, CollectBolt(), worker_cls=UnpicklableBolt),
            remote_components=("square",),
            n_workers=2,
        )
        try:
            with pytest.raises(TupleProcessingError) as excinfo:
                cluster.run()
            cause = excinfo.value.cause
            assert isinstance(cause, RuntimeError)
            text = str(cause)
            assert "unpicklable worker exception" in text
            assert "worker-side traceback" in text
            # the original raise site survives the process boundary
            assert "UnpicklableError" in text
            assert "in process" in text
        finally:
            cluster.close()

    def test_failed_run_leaves_no_live_workers(self):
        cluster = ParallelCluster(
            _square_topology(5, CollectBolt(), worker_cls=ExplodingBolt),
            remote_components=("square",),
            n_workers=2,
        )
        with pytest.raises(TupleProcessingError):
            cluster.run()
        # run() closed the cluster on the way out — nothing left running
        assert all(
            h.link is None or not h.link.alive() for h in cluster._workers
        )

    def test_barrier_timeout_raises_topology_error(self):
        cluster = ParallelCluster(
            _square_topology(4, CollectBolt()),
            remote_components=("square",),
            barrier_streams=("numbers",),
            n_workers=2,
            batch_size=1,
            barrier_timeout_s=0.2,
            fault_plan=FaultPlan().delay_acks(0, seconds=1.0),
        )
        with pytest.raises(TopologyError, match="timed out"):
            cluster.run()
        cluster.close()

    def test_close_is_idempotent_after_worker_death(self):
        cluster = ParallelCluster(
            _square_topology(8, CollectBolt(), worker_cls=DyingBolt),
            remote_components=("square",),
            n_workers=2,
            batch_size=1,
        )
        with pytest.raises(TupleProcessingError):
            cluster.run()
        cluster.close()  # already closed by run(); must not raise
        cluster.close()
        assert all(
            h.link is None or not h.link.alive() for h in cluster._workers
        )
