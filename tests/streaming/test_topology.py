"""Unit tests for topology declaration and validation."""

import pytest

from repro.exceptions import TopologyError
from repro.streaming.component import Bolt, Spout
from repro.streaming.grouping import ShuffleGrouping
from repro.streaming.topology import TopologyBuilder


class NullSpout(Spout):
    def next_tuple(self, collector) -> bool:
        return False


class NullBolt(Bolt):
    def process(self, tup, collector) -> None:
        pass


class TestTopologyBuilder:
    def test_minimal_topology(self):
        builder = TopologyBuilder()
        builder.set_spout("src", NullSpout)
        topology = builder.build()
        assert len(topology.spouts()) == 1
        assert topology.bolts() == []

    def test_bolt_subscription_chain(self):
        builder = TopologyBuilder()
        builder.set_spout("src", NullSpout)
        declarer = builder.set_bolt("sink", NullBolt, parallelism=2)
        result = declarer.subscribe("src", "a", ShuffleGrouping()).subscribe(
            "src", "b", ShuffleGrouping()
        )
        assert result is declarer
        topology = builder.build()
        assert len(topology.components["sink"].subscriptions) == 2

    def test_duplicate_name_rejected(self):
        builder = TopologyBuilder()
        builder.set_spout("x", NullSpout)
        with pytest.raises(TopologyError, match="duplicate"):
            builder.set_bolt("x", NullBolt)

    def test_unknown_source_rejected(self):
        builder = TopologyBuilder()
        builder.set_spout("src", NullSpout)
        builder.set_bolt("sink", NullBolt).subscribe(
            "ghost", "s", ShuffleGrouping()
        )
        with pytest.raises(TopologyError, match="unknown component"):
            builder.build()

    def test_self_subscription_rejected(self):
        builder = TopologyBuilder()
        builder.set_spout("src", NullSpout)
        builder.set_bolt("loop", NullBolt).subscribe("loop", "s", ShuffleGrouping())
        with pytest.raises(TopologyError, match="itself"):
            builder.build()

    def test_spoutless_topology_rejected(self):
        builder = TopologyBuilder()
        builder.set_bolt("sink", NullBolt)
        with pytest.raises(TopologyError, match="at least one spout"):
            builder.build()

    def test_non_positive_parallelism_rejected(self):
        builder = TopologyBuilder()
        with pytest.raises(TopologyError, match="parallelism"):
            builder.set_bolt("b", NullBolt, parallelism=0)

    def test_subscribers_lookup(self):
        builder = TopologyBuilder()
        builder.set_spout("src", NullSpout)
        builder.set_bolt("a", NullBolt).subscribe("src", "s", ShuffleGrouping())
        builder.set_bolt("b", NullBolt).subscribe("src", "other", ShuffleGrouping())
        topology = builder.build()
        assert [c.name for c in topology.subscribers("src", "s")] == ["a"]

    def test_cycles_between_bolts_allowed(self):
        """Control loops (Assigner <-> Merger) are legal topologies."""
        builder = TopologyBuilder()
        builder.set_spout("src", NullSpout)
        builder.set_bolt("a", NullBolt).subscribe("b", "s", ShuffleGrouping())
        builder.set_bolt("b", NullBolt).subscribe("a", "t", ShuffleGrouping())
        builder.build()
