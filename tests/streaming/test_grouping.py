"""Unit tests for the four Storm-style stream groupings."""

import pytest

from repro.exceptions import TopologyError
from repro.streaming.grouping import (
    AllGrouping,
    DirectGrouping,
    FieldsGrouping,
    GlobalGrouping,
    ShuffleGrouping,
)
from repro.streaming.tuples import StreamTuple


def make_tuple(values=("v",), direct_task=None):
    return StreamTuple(
        stream="s", values=values, source="src", source_task=0, direct_task=direct_task
    )


class TestShuffleGrouping:
    def test_round_robin(self):
        grouping = ShuffleGrouping()
        targets = [grouping.targets(make_tuple(), 3)[0] for _ in range(6)]
        assert targets == [0, 1, 2, 0, 1, 2]

    def test_equal_distribution(self):
        """Storm's contract: every instance receives an equal tuple count."""
        grouping = ShuffleGrouping()
        counts = [0] * 4
        for _ in range(400):
            counts[grouping.targets(make_tuple(), 4)[0]] += 1
        assert counts == [100, 100, 100, 100]

    def test_single_task(self):
        grouping = ShuffleGrouping()
        assert grouping.targets(make_tuple(), 1) == (0,)


class TestFieldsGrouping:
    def test_same_key_same_task(self):
        grouping = FieldsGrouping(key=0)
        t1 = grouping.targets(make_tuple(("userA", 1)), 5)
        t2 = grouping.targets(make_tuple(("userA", 2)), 5)
        assert t1 == t2

    def test_callable_key(self):
        grouping = FieldsGrouping(key=lambda values: values[1])
        t1 = grouping.targets(make_tuple(("x", "k")), 5)
        t2 = grouping.targets(make_tuple(("y", "k")), 5)
        assert t1 == t2

    def test_stable_across_instances(self):
        a = FieldsGrouping(key=0).targets(make_tuple(("u",)), 7)
        b = FieldsGrouping(key=0).targets(make_tuple(("u",)), 7)
        assert a == b

    def test_spreads_keys(self):
        grouping = FieldsGrouping(key=0)
        targets = {
            grouping.targets(make_tuple((f"user{i}",)), 8)[0] for i in range(100)
        }
        assert len(targets) > 4  # most tasks receive some keys


class TestAllGrouping:
    def test_replicates_to_every_task(self):
        assert AllGrouping().targets(make_tuple(), 4) == (0, 1, 2, 3)

    def test_single_task(self):
        assert AllGrouping().targets(make_tuple(), 1) == (0,)


class TestDirectGrouping:
    def test_producer_chooses_task(self):
        assert DirectGrouping().targets(make_tuple(direct_task=2), 4) == (2,)

    def test_missing_direct_task_rejected(self):
        with pytest.raises(TopologyError, match="direct_task"):
            DirectGrouping().targets(make_tuple(), 4)

    def test_out_of_range_rejected(self):
        with pytest.raises(TopologyError, match="out of range"):
            DirectGrouping().targets(make_tuple(direct_task=4), 4)


class TestGlobalGrouping:
    def test_always_task_zero(self):
        assert GlobalGrouping().targets(make_tuple(), 5) == (0,)
