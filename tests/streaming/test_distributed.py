"""Socket-transport acceptance suite (``make test-distributed``).

Everything here runs real ``python -m repro.worker`` subprocesses over
TCP.  The suite covers the distributed acceptance scenario — a worker
killed mid-window, respawned, and its journal replayed over a *fresh
socket connection* with byte-identical results — plus the unified stats
schema, worker-process leak checks on error paths, attach-mode
(``tcp://host:port``) workers, and a final orphan gate asserting that
no ``repro.worker`` process survives the suite.
"""

import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.data.serverlogs import ServerLogGenerator
from repro.exceptions import WorkerCrashError
from repro.faults import FaultPlan
from repro.streaming.component import Bolt, Spout
from repro.streaming.executor import LocalCluster
from repro.streaming.grouping import AllGrouping, FieldsGrouping, GlobalGrouping
from repro.streaming.parallel import ParallelCluster
from repro.streaming.recovery import RestartPolicy
from repro.streaming.topology import TopologyBuilder
from repro.streaming.transport.framing import parse_banner
from repro.topology.pipeline import StreamJoinConfig, run_stream_join

pytestmark = pytest.mark.distributed

FAST_RESTART = RestartPolicy(
    max_restarts_per_window=3, backoff_base_s=0.0, jitter=0.0
)

_SRC_ROOT = str(Path(__file__).resolve().parents[2] / "src")


def _live_worker_pids() -> list[int]:
    """PIDs of live ``repro.worker`` processes, via /proc cmdlines."""
    pids = []
    for entry in os.listdir("/proc"):
        if not entry.isdigit():
            continue
        try:
            with open(f"/proc/{entry}/cmdline", "rb") as handle:
                cmdline = handle.read()
        except OSError:
            continue
        if b"repro.worker" in cmdline:
            pids.append(int(entry))
    return pids


def _await_no_workers(timeout_s: float = 5.0) -> list[int]:
    """Give just-reaped workers a beat to vanish from /proc, then report."""
    deadline = time.monotonic() + timeout_s
    pids = _live_worker_pids()
    while pids and time.monotonic() < deadline:
        time.sleep(0.1)
        pids = _live_worker_pids()
    return pids


# ----------------------------------------------------------------------
# Synthetic topology (mirrors tests/streaming/test_transport.py)
# ----------------------------------------------------------------------
class TickingNumberSpout(Spout):
    def __init__(self, n: int, period: int = 10):
        self.n, self.period, self._i = n, period, 0

    def next_tuple(self, collector) -> bool:
        if self._i >= self.n:
            return False
        collector.emit("numbers", (self._i,))
        self._i += 1
        if self._i % self.period == 0:
            collector.emit("tick", (self._i,))
        return self._i < self.n


class SquareBolt(Bolt):
    def process(self, tup, collector) -> None:
        if tup.stream == "numbers":
            collector.emit("squares", (tup.values[0] ** 2,))


class CollectBolt(Bolt):
    def __init__(self):
        self.values: list[int] = []

    def process(self, tup, collector) -> None:
        self.values.append(tup.values[0])


def _square_topology(collector: CollectBolt, n: int = 50):
    builder = TopologyBuilder()
    builder.set_spout("src", lambda: TickingNumberSpout(n))
    square = builder.set_bolt("square", SquareBolt, parallelism=2)
    square.subscribe("src", "numbers", FieldsGrouping(key=0))
    square.subscribe("src", "tick", AllGrouping())
    builder.set_bolt("collect", lambda: collector).subscribe(
        "square", "squares", GlobalGrouping()
    )
    return builder.build()


def _clean_reference(n: int = 50) -> list[int]:
    collector = CollectBolt()
    with LocalCluster(_square_topology(collector, n)) as cluster:
        cluster.run()
    return sorted(collector.values)


# ----------------------------------------------------------------------
# Full Fig. 2 topology over TCP
# ----------------------------------------------------------------------
def _windows(n_windows: int = 3, size: int = 120):
    generator = ServerLogGenerator(seed=23)
    return [generator.next_window(size) for _ in range(n_windows)]


def _config(**overrides) -> StreamJoinConfig:
    return StreamJoinConfig(
        m=4,
        n_creators=2,
        n_assigners=3,
        compute_joins=True,
        collect_pairs=True,
        **overrides,
    )


class TestSocketTopology:
    def test_chaos_kill_replays_over_fresh_connection(self):
        """The acceptance scenario: a TCP worker killed mid-window is
        respawned, the journal is replayed over the fresh socket
        connection, and every output matches the fault-free local run."""
        windows = _windows()
        clean = run_stream_join(_config(), windows)
        faulted = run_stream_join(
            _config(
                backend="parallel",
                transport="socket",
                workers=2,
                restart_policy=FAST_RESTART,
                fault_plan=FaultPlan().kill_worker(0, after_batches=1),
            ),
            windows,
        )
        assert faulted.per_window == clean.per_window
        assert faulted.join_pairs == clean.join_pairs
        assert faulted.repartition_windows == clean.repartition_windows
        clean_stats = dict(clean.tuple_stats)
        faulted_stats = dict(faulted.tuple_stats)
        assert faulted_stats.pop("worker_restarts") >= 1
        clean_stats.pop("worker_restarts")
        assert faulted_stats.pop("transport") == "socket"
        assert clean_stats.pop("transport") is None
        # the respawned worker came back over a brand-new connection
        assert faulted_stats.pop("reconnects") >= 1
        clean_stats.pop("reconnects")
        # load-signal gauges depend on shipping, not on results
        for gauge in ("inflight_high_water", "journal_bytes"):
            faulted_stats.pop(gauge)
            clean_stats.pop(gauge)
        assert faulted_stats == clean_stats

    def test_stats_schema_is_unified_across_backends(self):
        windows = _windows(n_windows=2)
        runs = {
            "local": run_stream_join(_config(), windows),
            "pipe": run_stream_join(
                _config(backend="parallel", transport="pipe", workers=2), windows
            ),
            "socket": run_stream_join(
                _config(backend="parallel", transport="socket", workers=2), windows
            ),
        }
        stats = {name: dict(run.tuple_stats) for name, run in runs.items()}
        assert set(stats["local"]) == set(stats["pipe"]) == set(stats["socket"])
        assert stats["local"].pop("transport") is None
        assert stats["pipe"].pop("transport") == "pipe"
        assert stats["socket"].pop("transport") == "socket"
        # load-signal gauges track shipping pressure, which legitimately
        # differs per transport; everything else must be identical
        for backend_stats in stats.values():
            backend_stats.pop("inflight_high_water")
            backend_stats.pop("journal_bytes")
        # clean runs: identical accounting, zero robustness counters
        assert stats["local"] == stats["pipe"] == stats["socket"]
        assert stats["local"]["reconnects"] == 0
        assert stats["local"]["worker_restarts"] == 0
        assert stats["local"]["dead_letters"] == 0


class TestSocketLifecycle:
    def test_failed_run_leaves_no_worker_processes(self):
        """Error paths must reap TCP workers: exhaust the restart budget,
        then verify close() is idempotent and nothing lingers."""
        collector = CollectBolt()
        cluster = ParallelCluster(
            _square_topology(collector),
            remote_components=("square",),
            barrier_streams=("tick",),
            transport="socket",
            workers=2,
            batch_size=4,
            restart_policy=RestartPolicy(
                max_restarts_per_window=0, backoff_base_s=0.0, jitter=0.0
            ),
            fault_plan=FaultPlan().kill_worker(0, after_batches=1),
        )
        with pytest.raises(WorkerCrashError):
            cluster.run()
        cluster.close()
        assert all(handle.link is None for handle in cluster._workers)
        cluster.close()  # idempotent
        assert _await_no_workers() == []

    def test_attach_mode_serves_repeated_clusters(self):
        """A pre-started ``--max-connections 0`` worker addressed as
        ``tcp://host:port`` serves one cluster per connection — each
        connection ships a fresh WorkerInit, so state never leaks."""
        env = dict(os.environ)
        env["PYTHONPATH"] = _SRC_ROOT + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [
                sys.executable,
                "-u",
                "-m",
                "repro.worker",
                "--listen",
                "127.0.0.1:0",
                "--max-connections",
                "0",
            ],
            stdout=subprocess.PIPE,
            env=env,
            text=True,
        )
        try:
            banner = parse_banner(proc.stdout.readline())
            assert banner is not None, "worker printed no LISTEN banner"
            host, port = banner
            address = f"tcp://{host}:{port}"
            clean = _clean_reference(n=20)
            for _ in range(2):  # two clusters, two connections, same worker
                collector = CollectBolt()
                with ParallelCluster(
                    _square_topology(collector, n=20),
                    remote_components=("square",),
                    barrier_streams=("tick",),
                    transport="socket",
                    workers=[address],
                    batch_size=4,
                ) as cluster:
                    cluster.run()
                    stats = cluster.stats()
                assert sorted(collector.values) == clean
                assert stats["transport"] == "socket"
            assert proc.poll() is None  # attach-mode worker outlives clusters
        finally:
            proc.terminate()
            proc.wait(timeout=10)
            proc.stdout.close()


def test_no_orphaned_worker_processes():
    """The suite-level gate: nothing above may leak a worker process.

    Keep this test last in the file — it scans /proc after every other
    case has cleaned up.
    """
    assert _await_no_workers() == []
