"""Metric monotonicity across window barriers in long-running sessions.

The long-running-session contract (``docs/soak.md``): a live
:meth:`StreamJoinSession.observability` snapshot may be taken between
any two windows, and across 100+ windows every counter and histogram
total is non-decreasing — window barriers flush batches, they never
reset metrics.  The parallel leg pins the regression where
``ParallelCluster.snapshot()`` memoized its first merged snapshot and
returned frozen values to every later call.
"""

import pytest

from repro.data.zoo import ZipfSkewGenerator
from repro.soak.driver import check_monotonic
from repro.topology.pipeline import StreamJoinConfig
from repro.topology.session import StreamJoinSession


def _drive_session(config, n_windows, window_size=12, sample_every=10):
    """Push ``n_windows`` windows, snapshotting every ``sample_every``."""
    generator = ZipfSkewGenerator(seed=3)
    session = StreamJoinSession(config)
    snapshots = [session.observability()]
    for index in range(n_windows):
        session.push_window(generator.next_window(window_size))
        if (index + 1) % sample_every == 0:
            snapshots.append(session.observability())
            session.compact(retain_windows=16)
    snapshots.append(session.observability())
    session.result()
    return snapshots


def _assert_monotonic(snapshots):
    for previous, current in zip(snapshots, snapshots[1:]):
        assert check_monotonic(previous, current) == []


class TestLocalSessionMonotonicity:
    def test_counters_never_regress_across_120_windows(self):
        config = StreamJoinConfig(m=4, observability=True)
        snapshots = _drive_session(config, n_windows=120)
        _assert_monotonic(snapshots)
        # and the counters actually grew — the check has teeth only if
        # the series move between samples
        first, last = snapshots[1], snapshots[-1]
        grew = [
            name
            for name, value in last.counters.items()
            if value > first.counters.get(name, 0)
        ]
        assert grew

    def test_histogram_totals_accumulate(self):
        config = StreamJoinConfig(m=4, observability=True)
        snapshots = _drive_session(config, n_windows=100, sample_every=25)
        histogram_counts = [
            sum(h["count"] for h in snapshot.histograms.values())
            for snapshot in snapshots[1:]
        ]
        assert histogram_counts == sorted(histogram_counts)
        assert histogram_counts[-1] > histogram_counts[0]

    def test_compact_does_not_disturb_metrics(self):
        config = StreamJoinConfig(m=4, observability=True)
        generator = ZipfSkewGenerator(seed=5)
        session = StreamJoinSession(config)
        for _ in range(30):
            session.push_window(generator.next_window(10))
        before = session.observability()
        session.compact(retain_windows=4)
        after = session.observability()
        assert check_monotonic(before, after) == []
        assert session._sink.windows[-1].window == 29
        session.result()

    def test_observability_requires_the_flag(self):
        session = StreamJoinSession(StreamJoinConfig(m=4))
        with pytest.raises(ValueError, match="without observability"):
            session.observability()


@pytest.mark.parallel
class TestParallelSessionMonotonicity:
    def test_live_snapshots_are_fresh_not_memoized(self):
        """The regression: repeated snapshot() calls must re-collect."""
        config = StreamJoinConfig(
            m=4, backend="parallel", transport="pipe", workers=2,
            observability=True,
        )
        generator = ZipfSkewGenerator(seed=7)
        session = StreamJoinSession(config)
        session.push_window(generator.next_window(20))
        first = session.observability()
        session.push_window(generator.next_window(20))
        second = session.observability()
        assert check_monotonic(first, second) == []
        # the second window moved at least one counter, so a frozen
        # (memoized) snapshot would be caught here
        assert second.counters != first.counters
        session.result()

    def test_counters_never_regress_across_100_windows_over_pipe(self):
        config = StreamJoinConfig(
            m=4, backend="parallel", transport="pipe", workers=2,
            observability=True,
        )
        snapshots = _drive_session(
            config, n_windows=100, window_size=8, sample_every=20
        )
        _assert_monotonic(snapshots)
