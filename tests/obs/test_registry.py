"""Unit tests for the metrics registry, instruments and snapshots."""

import json

import pytest

from repro.obs import (
    NULL_REGISTRY,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    ObservabilitySnapshot,
    series_name,
    trace,
)


class TestSeriesName:
    def test_no_labels(self):
        assert series_name("joiner.probes") == "joiner.probes"

    def test_labels_sorted(self):
        name = series_name("m", {"b": 2, "a": 1})
        assert name == "m{a=1,b=2}"

    def test_kwargs_via_registry(self):
        registry = MetricsRegistry()
        counter = registry.counter("m", b=2, a=1)
        assert counter.name == "m{a=1,b=2}"


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        counter = MetricsRegistry().counter("c")
        assert counter.value == 0
        counter.inc()
        counter.inc(5)
        assert counter.value == 6

    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("c", x=1) is registry.counter("c", x=1)
        assert registry.counter("c", x=1) is not registry.counter("c", x=2)


class TestGauge:
    def test_set_last_write_wins(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set(3.0)
        gauge.set(1.0)
        assert gauge.value == 1.0

    def test_set_max_keeps_running_maximum(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set_max(3.0)
        gauge.set_max(1.0)
        assert gauge.value == 3.0


class TestHistogram:
    def test_bucket_assignment(self):
        hist = Histogram("h", buckets=(1.0, 10.0))
        for value in (0.5, 1.0, 5.0, 100.0):
            hist.observe(value)
        # 0.5 and 1.0 in <=1.0, 5.0 in <=10.0, 100.0 in +Inf
        assert hist.counts == [2, 1, 1]
        assert hist.count == 4
        assert hist.sum == pytest.approx(106.5)
        assert hist.min == 0.5
        assert hist.max == 100.0
        assert hist.mean == pytest.approx(106.5 / 4)

    def test_rejects_unsorted_buckets(self):
        with pytest.raises(ValueError, match="ascending"):
            Histogram("h", buckets=(2.0, 1.0))

    def test_empty_histogram_as_dict(self):
        data = Histogram("h", buckets=(1.0,)).as_dict()
        assert data["count"] == 0
        assert data["min"] is None and data["max"] is None
        assert data["mean"] == 0.0


class TestSpans:
    def test_trace_records_into_registry(self):
        registry = MetricsRegistry()
        with registry.trace("work", window=3) as span:
            pass
        assert span.duration >= 0.0
        assert list(registry.finished_spans) == [span]
        assert registry.histogram("trace.work_seconds").count == 1
        assert span.attributes == {"window": 3}

    def test_standalone_trace(self):
        with trace("unbound") as span:
            pass
        assert span.duration >= 0.0

    def test_span_does_not_swallow_exceptions(self):
        registry = MetricsRegistry()
        with pytest.raises(RuntimeError):
            with registry.trace("broken"):
                raise RuntimeError("boom")
        assert len(registry.finished_spans) == 1

    def test_span_limit(self):
        registry = MetricsRegistry(span_limit=2)
        for i in range(5):
            with registry.trace(f"s{i}"):
                pass
        assert [s.name for s in registry.finished_spans] == ["s3", "s4"]


class TestNullRegistry:
    def test_disabled_flag(self):
        assert NULL_REGISTRY.enabled is False
        assert MetricsRegistry().enabled is True

    def test_instruments_are_noops(self):
        registry = NullRegistry()
        counter = registry.counter("c")
        counter.inc(100)
        assert counter.value == 0
        gauge = registry.gauge("g")
        gauge.set(5.0)
        gauge.set_max(9.0)
        assert gauge.value == 0.0
        hist = registry.histogram("h")
        hist.observe(1.0)
        assert hist.count == 0

    def test_shared_instrument_instances(self):
        registry = NullRegistry()
        assert registry.counter("a") is registry.counter("b", x=1)

    def test_trace_is_noop(self):
        registry = NullRegistry()
        with registry.trace("work"):
            pass
        assert len(registry.finished_spans) == 0

    def test_snapshot_is_empty(self):
        snapshot = NullRegistry().snapshot()
        assert snapshot.counters == {}
        assert snapshot.gauges == {}
        assert snapshot.histograms == {}
        assert snapshot.spans == []


class TestSnapshot:
    def _populated(self) -> MetricsRegistry:
        registry = MetricsRegistry()
        registry.counter("c", machine=0).inc(3)
        registry.gauge("g").set(2.5)
        registry.histogram("h", buckets=(1.0,)).observe(0.5)
        with registry.trace("work", task=1):
            pass
        return registry

    def test_snapshot_round_trips_through_json(self):
        snapshot = self._populated().snapshot()
        restored = ObservabilitySnapshot.from_dict(
            json.loads(json.dumps(snapshot.as_dict()))
        )
        assert restored.counters == {"c{machine=0}": 3}
        assert restored.gauges == {"g": 2.5}
        assert restored.histograms["h"]["count"] == 1
        assert restored.spans[0]["name"] == "work"
        assert restored.spans[0]["attributes"] == {"task": 1}

    def test_to_json(self):
        text = self._populated().snapshot().to_json()
        data = json.loads(text)
        assert set(data) == {"counters", "gauges", "histograms", "spans"}

    def test_series_flattening(self):
        flat = self._populated().snapshot().series()
        assert flat["c{machine=0}"] == 3
        assert flat["g"] == 2.5
        assert flat["h"]["count"] == 1

    def test_snapshot_is_a_point_in_time_copy(self):
        registry = self._populated()
        snapshot = registry.snapshot()
        registry.counter("c", machine=0).inc()
        assert snapshot.counters["c{machine=0}"] == 3
