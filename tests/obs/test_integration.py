"""Integration: an instrumented topology run produces the promised series."""

import json

import pytest

from repro import StreamJoinConfig, run, run_stream_join
from repro.data.serverlogs import ServerLogGenerator


@pytest.fixture(scope="module")
def instrumented_result():
    generator = ServerLogGenerator(seed=11)
    windows = [generator.next_window(100) for _ in range(3)]
    return run(
        windows=windows,
        m=3,
        n_assigners=2,
        compute_joins=True,
        observability=True,
    )


class TestInstrumentedRun:
    def test_snapshot_attached(self, instrumented_result):
        assert instrumented_result.observability is not None

    def test_joiner_probe_counters_nonzero(self, instrumented_result):
        counters = instrumented_result.observability.counters
        assert counters["joiner.probes{algorithm=FPJ}"] > 0
        assert counters["joiner.inserts{algorithm=FPJ}"] > 0

    def test_executor_latency_buckets_populated(self, instrumented_result):
        histograms = instrumented_result.observability.histograms
        for component in ("assigner", "joiner", "merger"):
            hist = histograms[
                f"executor.execute_seconds{{component={component}}}"
            ]
            assert hist["count"] > 0
            assert sum(hist["counts"]) == hist["count"]

    def test_per_component_tuple_counts(self, instrumented_result):
        counters = instrumented_result.observability.counters
        assert counters["executor.processed{component=joiner}"] > 0
        assert counters["executor.emitted{component=reader}"] > 0
        assert counters["assigner.documents"] == 300

    def test_per_machine_replication_counters(self, instrumented_result):
        counters = instrumented_result.observability.counters
        machine_totals = [
            counters[f"assigner.machine_docs{{machine={i}}}"] for i in range(3)
        ]
        assert sum(machine_totals) == counters["assigner.assignments"]
        assert all(total > 0 for total in machine_totals)

    def test_snapshot_is_json_serializable(self, instrumented_result):
        text = json.dumps(instrumented_result.observability.as_dict())
        assert "joiner.probes" in text

    def test_summary_carries_snapshot(self, instrumented_result):
        summary = instrumented_result.summary()
        assert summary.observability is instrumented_result.observability
        assert "observability" in summary.as_dict()

    def test_spans_recorded(self, instrumented_result):
        names = {s["name"] for s in instrumented_result.observability.spans}
        assert "creator.mine_groups" in names
        assert "merger.build_partitions" in names


class TestDisabledRun:
    def test_no_snapshot_by_default(self):
        generator = ServerLogGenerator(seed=11)
        windows = [generator.next_window(60) for _ in range(2)]
        result = run_stream_join(StreamJoinConfig(m=2, n_assigners=2), windows)
        assert result.observability is None
        assert result.summary().observability is None
        assert "observability" not in result.summary().as_dict()
