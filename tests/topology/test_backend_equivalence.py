"""The parallel backend must reproduce the local backend exactly.

The determinism contract (docs/architecture.md, "Execution backends"):
for any configuration, the two backends produce byte-identical
per-window metrics, join-pair sets and tuple accounting.  These tests
pin that contract across partitioners and datasets.

All cases here carry the ``parallel`` marker (they fork real worker
processes and run full topologies); tier-1 coverage of the backend
lives in ``tests/streaming/test_parallel.py``.
"""

import pytest

from repro.data.nobench import NoBenchGenerator
from repro.data.serverlogs import ServerLogGenerator
from repro.topology.pipeline import StreamJoinConfig, run_stream_join

pytestmark = pytest.mark.parallel


def _windows(dataset: str, n_windows: int = 3, size: int = 120):
    generator = (
        ServerLogGenerator(seed=23)
        if dataset == "rwData"
        else NoBenchGenerator(seed=23)
    )
    return [generator.next_window(size) for _ in range(n_windows)]


def _run(dataset: str, algorithm: str, backend: str, **overrides):
    config = StreamJoinConfig(
        m=4,
        algorithm=algorithm,
        n_creators=2,
        n_assigners=3,
        compute_joins=True,
        collect_pairs=True,
        backend=backend,
        parallel_workers=2 if backend == "parallel" else None,
        **overrides,
    )
    return run_stream_join(config, _windows(dataset))


@pytest.mark.parametrize("algorithm", ["AG", "HASH"])
@pytest.mark.parametrize("dataset", ["rwData", "nbData"])
class TestBackendEquivalence:
    def test_results_are_byte_identical(self, dataset, algorithm):
        local = _run(dataset, algorithm, "local")
        par = _run(dataset, algorithm, "parallel")
        assert par.per_window == local.per_window
        assert par.join_pairs == local.join_pairs
        assert par.repartition_windows == local.repartition_windows
        assert par.tuple_stats == local.tuple_stats

    def test_summary_metrics_are_identical(self, dataset, algorithm):
        local = _run(dataset, algorithm, "local").summary()
        par = _run(dataset, algorithm, "parallel").summary()
        assert par.replication == local.replication
        assert par.gini == local.gini
        assert par.max_load == local.max_load
        assert par.repartition_rate == local.repartition_rate
        assert par.join_pairs == local.join_pairs


def test_observability_counters_match_local():
    local = _run("rwData", "AG", "local", observability=True)
    par = _run("rwData", "AG", "parallel", observability=True)
    assert par.observability is not None and local.observability is not None
    # spans and latency histograms carry wall-clock values and legitimately
    # differ; the discrete series (counters) must agree exactly
    assert par.observability.counters == local.observability.counters
    assert set(par.observability.histograms) == set(local.observability.histograms)


def test_session_supports_parallel_backend():
    from repro.topology.session import StreamJoinSession

    windows = _windows("rwData", n_windows=2)
    results = {}
    for backend in ("local", "parallel"):
        session = StreamJoinSession(
            StreamJoinConfig(
                m=4,
                n_assigners=3,
                compute_joins=True,
                collect_pairs=True,
                backend=backend,
                parallel_workers=2 if backend == "parallel" else None,
            )
        )
        for window in windows:
            session.push_window(window)
        results[backend] = session.result()
    assert results["parallel"].per_window == results["local"].per_window
    assert results["parallel"].join_pairs == results["local"].join_pairs
    assert results["parallel"].tuple_stats == results["local"].tuple_stats
