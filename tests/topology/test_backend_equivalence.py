"""The parallel backend must reproduce the local backend exactly.

The determinism contract (docs/architecture.md, "Execution backends"):
for any configuration, every backend/transport combination produces
byte-identical per-window metrics, join-pair sets and tuple accounting.
These tests pin that contract across partitioners, datasets and the
full backend matrix — (local, parallel+pipe, parallel+socket) × the
three seeded datasets.

All cases here fork real worker processes and run full topologies, so
they carry the ``parallel`` marker; the socket legs of the matrix
additionally carry ``distributed`` and run via ``make test-distributed``.
Tier-1 coverage of the backend lives in
``tests/streaming/test_parallel.py`` and
``tests/streaming/test_transport.py``.
"""

import pytest

from repro.experiments.config import make_generator
from repro.topology.pipeline import StreamJoinConfig, run_stream_join

pytestmark = pytest.mark.parallel

#: the backend matrix; socket legs are deselected from ``make
#: test-parallel`` (they need TCP worker subprocesses) and run under
#: ``make test-distributed`` instead
MATRIX = [
    pytest.param("local", "pipe", id="local"),
    pytest.param("parallel", "pipe", id="parallel-pipe"),
    pytest.param(
        "parallel", "socket", id="parallel-socket", marks=pytest.mark.distributed
    ),
]


def _windows(dataset: str, n_windows: int = 3, size: int = 120):
    generator = make_generator(dataset, seed=23, window_size=size)
    return [generator.next_window(size) for _ in range(n_windows)]


def _run(dataset: str, algorithm: str, backend: str, transport: str = "pipe", **overrides):
    config = StreamJoinConfig(
        m=4,
        algorithm=algorithm,
        n_creators=2,
        n_assigners=3,
        compute_joins=True,
        collect_pairs=True,
        backend=backend,
        transport=transport,
        workers=2 if backend == "parallel" else None,
        **overrides,
    )
    return run_stream_join(config, _windows(dataset))


def _comparable_stats(result, expect_transport):
    """Tuple accounting minus the keys that name the transport itself."""
    stats = dict(result.tuple_stats)
    assert stats.pop("transport") == expect_transport
    assert stats.pop("reconnects") == 0  # clean runs never reconnect
    # load-signal gauges legitimately differ between an inline run
    # (always zero) and a worker-pool run
    stats.pop("inflight_high_water")
    assert stats.pop("journal_bytes") == 0  # all barriers drained
    return stats


@pytest.mark.parametrize("algorithm", ["AG", "HASH"])
@pytest.mark.parametrize("dataset", ["rwData", "nbData"])
class TestBackendEquivalence:
    def test_results_are_byte_identical(self, dataset, algorithm):
        local = _run(dataset, algorithm, "local")
        par = _run(dataset, algorithm, "parallel")
        assert par.per_window == local.per_window
        assert par.join_pairs == local.join_pairs
        assert par.repartition_windows == local.repartition_windows
        assert _comparable_stats(par, "pipe") == _comparable_stats(local, None)

    def test_summary_metrics_are_identical(self, dataset, algorithm):
        local = _run(dataset, algorithm, "local").summary()
        par = _run(dataset, algorithm, "parallel").summary()
        assert par.replication == local.replication
        assert par.gini == local.gini
        assert par.max_load == local.max_load
        assert par.repartition_rate == local.repartition_rate
        assert par.join_pairs == local.join_pairs


@pytest.mark.parametrize("dataset", ["rwData", "nbData", "idealData"])
@pytest.mark.parametrize("backend,transport", MATRIX)
class TestTransportMatrix:
    """Every cell of the backend matrix against the local reference."""

    def test_matches_local_reference(self, dataset, backend, transport):
        local = _run(dataset, "AG", "local")
        run = _run(dataset, "AG", backend, transport=transport)
        assert run.per_window == local.per_window
        assert run.join_pairs == local.join_pairs
        assert run.repartition_windows == local.repartition_windows
        expected = transport if backend == "parallel" else None
        assert _comparable_stats(run, expected) == _comparable_stats(local, None)


def test_observability_counters_match_local():
    local = _run("rwData", "AG", "local", observability=True)
    par = _run("rwData", "AG", "parallel", observability=True)
    assert par.observability is not None and local.observability is not None
    # spans and latency histograms carry wall-clock values and legitimately
    # differ; the discrete series (counters) must agree exactly
    assert par.observability.counters == local.observability.counters
    assert set(par.observability.histograms) == set(local.observability.histograms)


def test_session_supports_parallel_backend():
    from repro.topology.session import StreamJoinSession

    windows = _windows("rwData", n_windows=2)
    results = {}
    for backend in ("local", "parallel"):
        session = StreamJoinSession(
            StreamJoinConfig(
                m=4,
                n_assigners=3,
                compute_joins=True,
                collect_pairs=True,
                backend=backend,
                workers=2 if backend == "parallel" else None,
            )
        )
        for window in windows:
            session.push_window(window)
        results[backend] = session.result()
    assert results["parallel"].per_window == results["local"].per_window
    assert results["parallel"].join_pairs == results["local"].join_pairs
    assert _comparable_stats(results["parallel"], "pipe") == _comparable_stats(
        results["local"], None
    )
