"""Property-style equivalence over the adversarial workload zoo.

Two layers of randomized equivalence, both driven by seeded zoo
workloads (:mod:`repro.data.zoo`) so every failure reproduces exactly:

* tier-1: every local joiner (FPJ / NLJ / HBJ) produces the brute-force
  join-pair set on every zoo workload across several seeds — heavy
  skew, schema churn, reordering and flash crowds don't break join
  semantics;
* backend matrix (``parallel`` / ``distributed`` markers): the full
  topology produces byte-identical per-window metrics and pair sets on
  local vs parallel+pipe vs parallel+socket, extending the
  seed-dataset matrix of ``test_backend_equivalence.py`` to the zoo.
"""

import pytest

from repro.data.zoo import ZOO_WORKLOADS, make_zoo_generator
from repro.join.base import brute_force_pairs, join_window
from repro.join.fptree_join import FPTreeJoiner
from repro.join.hash_join import HashJoiner
from repro.join.nested_loop import NestedLoopJoiner
from repro.topology.pipeline import StreamJoinConfig, run_stream_join

JOINERS = {
    "FPJ": FPTreeJoiner,
    "NLJ": NestedLoopJoiner,
    "HBJ": HashJoiner,
}

#: the backend matrix, mirroring test_backend_equivalence.py: socket
#: legs need TCP worker subprocesses and run under make test-distributed
MATRIX = [
    pytest.param("parallel", "pipe", id="parallel-pipe"),
    pytest.param(
        "parallel", "socket", id="parallel-socket", marks=pytest.mark.distributed
    ),
]


def _zoo_windows(workload: str, seed: int, n_windows: int = 3, size: int = 60):
    generator = make_zoo_generator(workload, seed=seed)
    return [generator.next_window(size) for _ in range(n_windows)]


@pytest.mark.parametrize("workload", ZOO_WORKLOADS)
@pytest.mark.parametrize("joiner_name", sorted(JOINERS))
@pytest.mark.parametrize("seed", [1, 17, 202])
def test_joiners_match_brute_force_on_zoo_workloads(workload, joiner_name, seed):
    for window in _zoo_windows(workload, seed, n_windows=2, size=50):
        joiner = JOINERS[joiner_name]()
        assert frozenset(join_window(joiner, window)) == brute_force_pairs(window)


@pytest.mark.parametrize("workload", ZOO_WORKLOADS)
@pytest.mark.parametrize("seed", [5, 71])
def test_joiners_agree_pairwise_on_zoo_workloads(workload, seed):
    """All three joiners produce one identical pair set per window."""
    for window in _zoo_windows(workload, seed, n_windows=2, size=50):
        results = {
            name: frozenset(join_window(cls(), window))
            for name, cls in JOINERS.items()
        }
        assert results["FPJ"] == results["NLJ"] == results["HBJ"]


def _run(workload: str, seed: int, backend: str, transport: str = "pipe"):
    config = StreamJoinConfig(
        m=4,
        algorithm="AG",
        n_creators=2,
        n_assigners=3,
        compute_joins=True,
        collect_pairs=True,
        backend=backend,
        transport=transport,
        workers=2 if backend == "parallel" else None,
    )
    return run_stream_join(config, _zoo_windows(workload, seed))


def _comparable_stats(result, expect_transport):
    stats = dict(result.tuple_stats)
    assert stats.pop("transport") == expect_transport
    assert stats.pop("reconnects") == 0
    # load-signal gauges legitimately differ between an inline run
    # (always zero) and a worker-pool run
    stats.pop("inflight_high_water")
    assert stats.pop("journal_bytes") == 0  # all barriers drained
    return stats


@pytest.mark.parallel
@pytest.mark.parametrize("backend,transport", MATRIX)
@pytest.mark.parametrize("workload", ZOO_WORKLOADS)
def test_backends_byte_identical_on_zoo_workloads(workload, backend, transport):
    seed = 37
    local = _run(workload, seed, "local")
    other = _run(workload, seed, backend, transport)
    assert other.per_window == local.per_window
    assert other.join_pairs == local.join_pairs
    assert other.repartition_windows == local.repartition_windows
    assert _comparable_stats(other, transport) == _comparable_stats(local, None)
