"""Unit tests for the topology message payloads and wire codecs."""

from repro.core.document import Document
from repro.topology.messages import (
    ASSIGNED,
    AttributeStats,
    ColumnarWireCodec,
    ControlMessage,
    DictionaryWireCodec,
    wire_codec,
)


class TestAttributeStats:
    def test_observe_counts_documents_and_values(self):
        stats = AttributeStats()
        stats.observe([("a", 1), ("b", 2)])
        stats.observe([("a", 3)])
        assert stats.sample_size == 2
        assert stats.doc_count == {"a": 2, "b": 1}
        assert stats.values["a"] == {1, 3}

    def test_value_cap_bounds_memory(self):
        stats = AttributeStats()
        for i in range(AttributeStats.VALUE_CAP + 50):
            stats.observe([("k", i)])
        assert len(stats.values["k"]) == AttributeStats.VALUE_CAP
        assert stats.doc_count["k"] == AttributeStats.VALUE_CAP + 50

    def test_merge_combines_counts(self):
        a, b = AttributeStats(), AttributeStats()
        a.observe([("x", 1)])
        b.observe([("x", 2), ("y", 3)])
        a.merge(b)
        assert a.sample_size == 2
        assert a.doc_count == {"x": 2, "y": 1}
        assert a.values["x"] == {1, 2}

    def test_merge_respects_cap(self):
        a, b = AttributeStats(), AttributeStats()
        for i in range(AttributeStats.VALUE_CAP):
            a.observe([("k", i)])
        b.observe([("k", "fresh")])
        a.merge(b)
        assert len(a.values["k"]) == AttributeStats.VALUE_CAP


class TestControlMessage:
    def test_repartition_message(self):
        control = ControlMessage(kind="repartition", window_id=3)
        assert control.pair is None
        assert control.co_pairs == ()

    def test_messages_are_hashable(self):
        a = ControlMessage(kind="repartition", window_id=3)
        b = ControlMessage(kind="repartition", window_id=3)
        assert a == b
        assert hash(a) == hash(b)


def roundtrip(codec, doc, window_id=0, side=None):
    return codec.decode(ASSIGNED, codec.encode(ASSIGNED, (doc, window_id, side)))


class TestDictionaryWireCodec:
    def test_default_codec_ships_columnar_frames(self):
        codec = wire_codec()
        assert isinstance(codec, ColumnarWireCodec)
        assert codec.supports_frames
        # stateless: links share the instance, so journaled frames
        # decode on any incarnation
        assert codec.link_codec() is codec

    def test_assigned_roundtrip(self):
        link = DictionaryWireCodec().link_codec()
        doc = Document({"user": "A", "severity": "warn", "code": 7}, doc_id=3)
        decoded, window_id, side = roundtrip(link, doc, window_id=2, side="L")
        assert decoded.pairs == doc.pairs
        assert decoded.doc_id == 3
        assert (window_id, side) == (2, "L")

    def test_delta_ships_each_pair_once(self):
        link = DictionaryWireCodec().link_codec()
        doc = Document({"a": 1, "b": 2}, doc_id=0)
        first = link.encode(ASSIGNED, (doc, 0, None))
        assert first[1] == (("a", 1), ("b", 2))  # full pairs on first sight
        link.decode(ASSIGNED, first)  # the link decodes in FIFO order
        repeat = Document({"a": 1, "b": 2, "c": 3}, doc_id=1)
        second = link.encode(ASSIGNED, (repeat, 0, None))
        assert second[1] == (("c", 3),)  # known pairs travel as ids only
        assert second[0][:2] == first[0]
        decoded, _, _ = link.decode(ASSIGNED, second)
        assert decoded.pairs == repeat.pairs

    def test_wire_ids_preserve_value_types(self):
        # The joiners may conflate 1/True/1.0 (value equality); the wire
        # must not — documents reconstruct with their original types.
        link = DictionaryWireCodec().link_codec()
        for value in (1, True, 1.0, "1"):
            decoded, _, _ = roundtrip(link, Document({"k": value}, doc_id=0))
            assert decoded.pairs["k"] is not None
            assert type(decoded.pairs["k"]) is type(value)
            assert decoded.pairs["k"] == value

    def test_links_are_independent(self):
        # One dictionary per parent->worker link: ids assigned on one
        # link must not leak into (or desync) another.
        codec = DictionaryWireCodec()
        left, right = codec.link_codec(), codec.link_codec()
        assert left is not right
        doc_a = Document({"a": 1}, doc_id=0)
        doc_b = Document({"b": 2}, doc_id=1)
        left.encode(ASSIGNED, (doc_a, 0, None))  # advances only left's ids
        decoded, _, _ = roundtrip(right, doc_b)
        assert decoded.pairs == {"b": 2}

    def test_shared_instance_stays_stateless(self):
        # The shared codec itself (worker->parent traffic) encodes the
        # seed's plain-tuple form and is safe to reuse across links.
        codec = DictionaryWireCodec()
        doc = Document({"a": 1}, doc_id=0)
        encoded = codec.encode(ASSIGNED, (doc, 1, None))
        assert encoded == ((("a", 1),), 0, 1, None)
        decoded, _, _ = roundtrip(codec, doc)
        assert decoded.pairs == doc.pairs
