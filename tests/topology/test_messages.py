"""Unit tests for the topology message payloads."""

from repro.topology.messages import AttributeStats, ControlMessage


class TestAttributeStats:
    def test_observe_counts_documents_and_values(self):
        stats = AttributeStats()
        stats.observe([("a", 1), ("b", 2)])
        stats.observe([("a", 3)])
        assert stats.sample_size == 2
        assert stats.doc_count == {"a": 2, "b": 1}
        assert stats.values["a"] == {1, 3}

    def test_value_cap_bounds_memory(self):
        stats = AttributeStats()
        for i in range(AttributeStats.VALUE_CAP + 50):
            stats.observe([("k", i)])
        assert len(stats.values["k"]) == AttributeStats.VALUE_CAP
        assert stats.doc_count["k"] == AttributeStats.VALUE_CAP + 50

    def test_merge_combines_counts(self):
        a, b = AttributeStats(), AttributeStats()
        a.observe([("x", 1)])
        b.observe([("x", 2), ("y", 3)])
        a.merge(b)
        assert a.sample_size == 2
        assert a.doc_count == {"x": 2, "y": 1}
        assert a.values["x"] == {1, 2}

    def test_merge_respects_cap(self):
        a, b = AttributeStats(), AttributeStats()
        for i in range(AttributeStats.VALUE_CAP):
            a.observe([("k", i)])
        b.observe([("k", "fresh")])
        a.merge(b)
        assert len(a.values["k"]) == AttributeStats.VALUE_CAP


class TestControlMessage:
    def test_repartition_message(self):
        control = ControlMessage(kind="repartition", window_id=3)
        assert control.pair is None
        assert control.co_pairs == ()

    def test_messages_are_hashable(self):
        a = ControlMessage(kind="repartition", window_id=3)
        b = ControlMessage(kind="repartition", window_id=3)
        assert a == b
        assert hash(a) == hash(b)
