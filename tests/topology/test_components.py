"""Unit tests for the individual topology components (bolts/spout)."""

import pytest

from repro.core.document import AVPair, Document
from repro.partitioning.association import AssociationGroupPartitioner
from repro.partitioning.base import Partition
from repro.partitioning.setcover import SetCoverPartitioner
from repro.streaming.component import ComponentContext
from repro.streaming.tuples import StreamTuple
from repro.topology import messages as msg
from repro.topology.assigner import AssignerBolt
from repro.topology.joiner import JoinerBolt
from repro.topology.json_reader import DocumentSpout
from repro.topology.merger import MergerBolt
from repro.topology.partition_creator import PartitionCreatorBolt


class FakeCollector:
    """Records emitted tuples for assertions."""

    def __init__(self):
        self.emitted: list[tuple] = []

    def emit(self, stream, values, direct_task=None):
        self.emitted.append((stream, values, direct_task))

    def emit_fanout(self, stream, values, targets):
        for target in targets:
            self.emit(stream, values, direct_task=target)

    def on_stream(self, stream):
        return [e for e in self.emitted if e[0] == stream]


def context(component, task_index=0, parallelism=1, **others):
    parallel = {
        msg.CREATOR: 2,
        msg.ASSIGNER: 2,
        msg.JOINER: 3,
        msg.MERGER: 1,
        msg.SINK: 1,
        component: parallelism,
    }
    parallel.update(others)
    return ComponentContext(component, task_index, parallelism, parallel)


def doc_tuple(document, window_id=0, source=msg.READER, stream=msg.DOCS):
    return StreamTuple(stream, (document, window_id, None), source, 0)


def window_end(window_id, source=msg.READER):
    return StreamTuple(msg.WINDOW_END, (window_id,), source, 0)


class TestDocumentSpout:
    def test_emits_documents_then_punctuation(self):
        docs = [Document({"a": 1}, doc_id=0), Document({"b": 2}, doc_id=1)]
        spout = DocumentSpout([docs])
        collector = FakeCollector()
        while spout.next_tuple(collector):
            pass
        streams = [e[0] for e in collector.emitted]
        assert streams == [msg.DOCS, msg.DOCS, msg.WINDOW_END]

    def test_window_ids_tagged(self):
        w0 = [Document({"a": 1}, doc_id=0)]
        w1 = [Document({"b": 2}, doc_id=1)]
        spout = DocumentSpout([w0, w1])
        collector = FakeCollector()
        while spout.next_tuple(collector):
            pass
        docs = collector.on_stream(msg.DOCS)
        assert [values[1] for _, values, _ in docs] == [0, 1]
        ends = collector.on_stream(msg.WINDOW_END)
        assert [values[0] for _, values, _ in ends] == [0, 1]

    def test_exhaustion(self):
        spout = DocumentSpout([[Document({"a": 1}, doc_id=0)]])
        collector = FakeCollector()
        assert spout.next_tuple(collector) is True  # the doc
        assert spout.next_tuple(collector) is False  # punctuation, then done


class TestPartitionCreator:
    def test_samples_bootstrap_window(self):
        creator = PartitionCreatorBolt()
        creator.prepare(context(msg.CREATOR))
        collector = FakeCollector()
        creator.process(doc_tuple(Document({"a": 1}, doc_id=0)), collector)
        creator.process(window_end(0), collector)
        stats = collector.on_stream(msg.SAMPLE_STATS)
        assert len(stats) == 1
        _, (window_id, attribute_stats, size), _ = stats[0]
        assert window_id == 0
        assert size == 1
        assert attribute_stats.doc_count == {"a": 1}

    def test_mining_request_produces_local_groups(self):
        creator = PartitionCreatorBolt()
        creator.prepare(context(msg.CREATOR))
        collector = FakeCollector()
        creator.process(doc_tuple(Document({"a": 1, "b": 2}, doc_id=0)), collector)
        creator.process(window_end(0), collector)
        creator.process(
            StreamTuple(msg.MINING_REQUEST, (0, None), msg.MERGER, 0), collector
        )
        groups_msgs = collector.on_stream(msg.LOCAL_GROUPS)
        assert len(groups_msgs) == 1
        _, (window_id, groups, sample_sets, broadcasts, size), _ = groups_msgs[0]
        assert window_id == 0 and size == 1 and broadcasts == 0
        assert {p for g in groups for p in g.pairs} == {
            AVPair("a", 1), AVPair("b", 2)
        }
        assert dict(sample_sets) == {
            frozenset({AVPair("a", 1), AVPair("b", 2)}): 1
        }

    def test_stops_sampling_after_mining(self):
        creator = PartitionCreatorBolt()
        creator.prepare(context(msg.CREATOR))
        collector = FakeCollector()
        creator.process(doc_tuple(Document({"a": 1}, doc_id=0)), collector)
        creator.process(window_end(0), collector)
        creator.process(
            StreamTuple(msg.MINING_REQUEST, (0, None), msg.MERGER, 0), collector
        )
        collector.emitted.clear()
        # next window: no sampling scheduled -> silence at window end
        creator.process(doc_tuple(Document({"b": 2}, doc_id=1), 1), collector)
        creator.process(window_end(1), collector)
        assert collector.emitted == []

    def test_repartition_control_resumes_sampling(self):
        creator = PartitionCreatorBolt()
        creator.prepare(context(msg.CREATOR))
        collector = FakeCollector()
        creator.process(window_end(0), collector)  # bootstrap stats (empty)
        creator.process(
            StreamTuple(msg.MINING_REQUEST, (0, None), msg.MERGER, 0), collector
        )
        collector.emitted.clear()
        control = StreamTuple(
            msg.CONTROL,
            (msg.ControlMessage(kind="repartition", window_id=0),),
            msg.ASSIGNER,
            0,
        )
        creator.process(control, collector)
        creator.process(doc_tuple(Document({"c": 3}, doc_id=5), 1), collector)
        creator.process(window_end(1), collector)
        assert len(collector.on_stream(msg.SAMPLE_STATS)) == 1

    def test_centralized_mode_ships_sample_sets_only(self):
        creator = PartitionCreatorBolt(distributed_mining=False)
        creator.prepare(context(msg.CREATOR))
        collector = FakeCollector()
        creator.process(doc_tuple(Document({"a": 1, "b": 2}, doc_id=0)), collector)
        creator.process(doc_tuple(Document({"c": 3}, doc_id=1)), collector)
        creator.process(doc_tuple(Document({"c": 3}, doc_id=2)), collector)
        creator.process(window_end(0), collector)
        creator.process(
            StreamTuple(msg.MINING_REQUEST, (0, None), msg.MERGER, 0), collector
        )
        _, (_, groups, sample_sets, _, size), _ = collector.on_stream(
            msg.LOCAL_GROUPS
        )[0]
        assert groups == []  # baselines mine nothing locally
        assert size == 3
        counts = dict(sample_sets)
        assert counts[frozenset({AVPair("c", 3)})] == 2  # multiplicity kept


class TestMerger:
    def _run_protocol(self, merger, docs, window_id=0):
        """Drive the two-round protocol with a single virtual creator."""
        collector = FakeCollector()
        creator = PartitionCreatorBolt(
            distributed_mining=isinstance(
                merger.partitioner, AssociationGroupPartitioner
            )
        )
        creator.prepare(context(msg.CREATOR, parallelism=1))
        creator_out = FakeCollector()
        for doc in docs:
            creator.process(doc_tuple(doc, window_id), creator_out)
        creator.process(window_end(window_id), creator_out)
        _, stats_values, _ = creator_out.on_stream(msg.SAMPLE_STATS)[0]
        merger.process(
            StreamTuple(msg.SAMPLE_STATS, stats_values, msg.CREATOR, 0), collector
        )
        _, (wid, plan), _ = collector.on_stream(msg.MINING_REQUEST)[0]
        creator.process(
            StreamTuple(msg.MINING_REQUEST, (wid, plan), msg.MERGER, 0), creator_out
        )
        _, group_values, _ = creator_out.on_stream(msg.LOCAL_GROUPS)[0]
        merger.process(
            StreamTuple(msg.LOCAL_GROUPS, group_values, msg.CREATOR, 0), collector
        )
        return collector

    def _merger(self, partitioner=None, m=3, n_creators=1, **kwargs):
        merger = MergerBolt(partitioner or AssociationGroupPartitioner(), **kwargs)
        merger.prepare(
            context(msg.MERGER, **{msg.JOINER: m, msg.CREATOR: n_creators})
        )
        return merger

    def test_partition_set_emitted(self, fig3_documents):
        merger = self._merger()
        collector = self._run_protocol(merger, fig3_documents)
        partition_msgs = collector.on_stream(msg.PARTITIONS)
        assert len(partition_msgs) == 1
        (pset,) = partition_msgs[0][1]
        assert pset.version == 1
        assert len(pset.partitions) == 3

    def test_repartition_event_marks_initial(self, fig3_documents):
        merger = self._merger()
        collector = self._run_protocol(merger, fig3_documents)
        _, (window_id, initial), _ = collector.on_stream(msg.REPARTITION_EVENT)[0]
        assert window_id == 0 and initial is True

    def test_second_computation_increments_version(self, fig3_documents):
        merger = self._merger()
        self._run_protocol(merger, fig3_documents, window_id=0)
        collector = self._run_protocol(merger, fig3_documents, window_id=1)
        (pset,) = collector.on_stream(msg.PARTITIONS)[0][1]
        assert pset.version == 2
        _, (_, initial), _ = collector.on_stream(msg.REPARTITION_EVENT)[0]
        assert initial is False

    def test_centralized_baseline_runs_whole_algorithm(self, fig1_documents):
        merger = self._merger(partitioner=SetCoverPartitioner())
        collector = self._run_protocol(merger, fig1_documents)
        (pset,) = collector.on_stream(msg.PARTITIONS)[0][1]
        owned = {p for part in pset.partitions for p in part.pairs}
        assert owned == {p for d in fig1_documents for p in d.avpairs()}

    def test_expansion_planned_for_low_variety(self):
        docs = [
            Document({"flag": i % 2 == 0, "dev": f"d{i % 9}"}, doc_id=i)
            for i in range(18)
        ]
        merger = self._merger(m=4)
        collector = self._run_protocol(merger, docs)
        (pset,) = collector.on_stream(msg.PARTITIONS)[0][1]
        assert pset.expansion is not None
        assert pset.expansion.attributes[0] == "flag"

    def test_expansion_off(self):
        docs = [
            Document({"flag": i % 2 == 0, "dev": f"d{i % 9}"}, doc_id=i)
            for i in range(18)
        ]
        merger = self._merger(m=4, expansion="off")
        collector = self._run_protocol(merger, docs)
        (pset,) = collector.on_stream(msg.PARTITIONS)[0][1]
        assert pset.expansion is None

    def test_invalid_expansion_mode(self):
        with pytest.raises(ValueError):
            MergerBolt(AssociationGroupPartitioner(), expansion="maybe")

    def test_multiple_instances_rejected(self):
        merger = MergerBolt(AssociationGroupPartitioner())
        bad = ComponentContext(msg.MERGER, 0, 2, {msg.JOINER: 2, msg.CREATOR: 1})
        with pytest.raises(ValueError, match="single instance"):
            merger.prepare(bad)

    def test_update_grafts_pair_onto_best_partition(self, fig3_documents):
        merger = self._merger()
        self._run_protocol(merger, fig3_documents)
        collector = FakeCollector()
        update = msg.ControlMessage(
            kind="update",
            window_id=1,
            pair=AVPair("E", 99),
            co_pairs=(AVPair("D", 13),),
        )
        merger.process(
            StreamTuple(msg.CONTROL, (update,), msg.ASSIGNER, 0), collector
        )
        updates = collector.on_stream(msg.PARTITION_UPDATE)
        assert len(updates) == 1
        pair, index = updates[0][1]
        assert pair == AVPair("E", 99)
        # the partition holding D:13 shares the most co-pairs
        target = merger._partitions[index]
        assert AVPair("D", 13) in target.pairs

    def test_duplicate_update_ignored(self, fig3_documents):
        merger = self._merger()
        self._run_protocol(merger, fig3_documents)
        collector = FakeCollector()
        update = msg.ControlMessage(
            kind="update", window_id=1, pair=AVPair("E", 99), co_pairs=()
        )
        merger.process(StreamTuple(msg.CONTROL, (update,), msg.ASSIGNER, 0), collector)
        merger.process(StreamTuple(msg.CONTROL, (update,), msg.ASSIGNER, 0), collector)
        assert len(collector.on_stream(msg.PARTITION_UPDATE)) == 1


class TestAssigner:
    def _assigner(self, theta=0.2, delta=2, n_joiners=3):
        assigner = AssignerBolt(theta=theta, delta=delta)
        assigner.prepare(context(msg.ASSIGNER, **{msg.JOINER: n_joiners}))
        return assigner

    def _install(self, assigner, partitions, **kwargs):
        pset = msg.PartitionSet(
            version=1,
            partitions=partitions,
            expansion=None,
            baseline_replication=kwargs.get("baseline_replication", 1.0),
            baseline_max_load=kwargs.get("baseline_max_load", 0.5),
            created_at_window=0,
        )
        assigner.process(
            StreamTuple(msg.PARTITIONS, (pset,), msg.MERGER, 0), FakeCollector()
        )

    def test_bootstrap_broadcasts(self):
        assigner = self._assigner()
        collector = FakeCollector()
        assigner.process(doc_tuple(Document({"a": 1}, doc_id=0)), collector)
        assigned = collector.on_stream(msg.ASSIGNED)
        assert [direct for _, _, direct in assigned] == [0, 1, 2]

    def test_routes_after_partitions_installed(self):
        assigner = self._assigner()
        self._install(
            assigner,
            [
                Partition(index=0, pairs={AVPair("a", 1)}),
                Partition(index=1, pairs={AVPair("b", 2)}),
                Partition(index=2, pairs=set()),
            ],
        )
        collector = FakeCollector()
        assigner.process(doc_tuple(Document({"a": 1}, doc_id=0)), collector)
        assert [d for _, _, d in collector.on_stream(msg.ASSIGNED)] == [0]

    def test_delta_threshold_triggers_update_request(self):
        assigner = self._assigner(delta=2)
        self._install(assigner, [Partition(index=i) for i in range(3)])
        collector = FakeCollector()
        doc = Document({"new": 1}, doc_id=0)
        assigner.process(doc_tuple(doc), collector)
        assert collector.on_stream(msg.CONTROL) == []  # 1 occurrence < delta
        assigner.process(doc_tuple(Document({"new": 1}, doc_id=1)), collector)
        controls = collector.on_stream(msg.CONTROL)
        assert len(controls) == 1
        (control,) = controls[0][1]
        assert control.kind == "update"
        assert control.pair == AVPair("new", 1)

    def test_update_requested_once_per_pair(self):
        assigner = self._assigner(delta=1)
        self._install(assigner, [Partition(index=i) for i in range(3)])
        collector = FakeCollector()
        for i in range(3):
            assigner.process(doc_tuple(Document({"new": 1}, doc_id=i)), collector)
        assert len(collector.on_stream(msg.CONTROL)) == 1

    def test_partition_update_applied(self):
        assigner = self._assigner()
        self._install(assigner, [Partition(index=i) for i in range(3)])
        assigner.process(
            StreamTuple(msg.PARTITION_UPDATE, (AVPair("new", 1), 2), msg.MERGER, 0),
            FakeCollector(),
        )
        collector = FakeCollector()
        assigner.process(doc_tuple(Document({"new": 1}, doc_id=0)), collector)
        assert [d for _, _, d in collector.on_stream(msg.ASSIGNED)] == [2]

    def test_window_end_emits_stats_and_done(self):
        assigner = self._assigner()
        collector = FakeCollector()
        assigner.process(doc_tuple(Document({"a": 1}, doc_id=0)), collector)
        assigner.process(window_end(0), collector)
        stats = collector.on_stream(msg.ASSIGNER_STATS)
        assert len(stats) == 1
        (record,) = stats[0][1]
        assert record.documents == 1
        assert record.assignments == 3  # bootstrap broadcast to 3 joiners
        assert len(collector.on_stream(msg.WINDOW_DONE)) == 1

    def test_theta_exceeded_triggers_repartition(self):
        assigner = self._assigner(theta=0.2)
        self._install(
            assigner,
            [Partition(index=i) for i in range(3)],
            baseline_replication=1.0,
            baseline_max_load=0.2,
        )
        collector = FakeCollector()
        # everything broadcasts (empty partitions) -> observed repl = 3.0
        assigner.process(doc_tuple(Document({"x": 1}, doc_id=0)), collector)
        assigner.process(window_end(0), collector)
        controls = [
            values[0]
            for _, values, _ in collector.on_stream(msg.CONTROL)
        ]
        assert any(c.kind == "repartition" for c in controls)

    def test_theta_not_exceeded_stays_quiet(self):
        assigner = self._assigner(theta=0.2)
        self._install(
            assigner,
            [
                Partition(index=0, pairs={AVPair("a", 1)}),
                Partition(index=1, pairs=set()),
                Partition(index=2, pairs=set()),
            ],
            baseline_replication=1.0,
            baseline_max_load=1.0,
        )
        collector = FakeCollector()
        assigner.process(doc_tuple(Document({"a": 1}, doc_id=0)), collector)
        assigner.process(window_end(0), collector)
        controls = [v[0] for _, v, _ in collector.on_stream(msg.CONTROL)]
        assert not any(c.kind == "repartition" for c in controls)

    def test_counters_reset_per_window(self):
        assigner = self._assigner()
        collector = FakeCollector()
        assigner.process(doc_tuple(Document({"a": 1}, doc_id=0)), collector)
        assigner.process(window_end(0), collector)
        collector.emitted.clear()
        assigner.process(window_end(1), collector)
        (record,) = collector.on_stream(msg.ASSIGNER_STATS)[0][1]
        assert record.documents == 0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            AssignerBolt(theta=-0.1)
        with pytest.raises(ValueError):
            AssignerBolt(delta=0)


class TestJoiner:
    def _joiner(self, **kwargs):
        joiner = JoinerBolt(**kwargs)
        joiner.prepare(context(msg.JOINER, **{msg.ASSIGNER: 2}))
        return joiner

    def test_counts_join_pairs(self):
        joiner = self._joiner()
        collector = FakeCollector()
        joiner.process(doc_tuple(Document({"a": 1}, doc_id=0), source=msg.ASSIGNER, stream=msg.ASSIGNED), collector)
        joiner.process(doc_tuple(Document({"a": 1}, doc_id=1), source=msg.ASSIGNER, stream=msg.ASSIGNED), collector)
        for _ in range(2):  # one done marker per assigner
            joiner.process(
                StreamTuple(msg.WINDOW_DONE, (0,), msg.ASSIGNER, 0), collector
            )
        stats_msgs = collector.on_stream(msg.JOIN_STATS)
        assert len(stats_msgs) == 1
        stats, pairs = stats_msgs[0][1]
        assert stats.join_pairs == 1
        assert stats.documents == 2
        assert pairs is None

    def test_waits_for_all_assigners(self):
        joiner = self._joiner()
        collector = FakeCollector()
        joiner.process(
            StreamTuple(msg.WINDOW_DONE, (0,), msg.ASSIGNER, 0), collector
        )
        assert collector.on_stream(msg.JOIN_STATS) == []

    def test_collect_pairs(self):
        from repro.join.base import JoinPair

        joiner = self._joiner(collect_pairs=True)
        collector = FakeCollector()
        joiner.process(doc_tuple(Document({"a": 1}, doc_id=5), source=msg.ASSIGNER, stream=msg.ASSIGNED), collector)
        joiner.process(doc_tuple(Document({"a": 1}, doc_id=9), source=msg.ASSIGNER, stream=msg.ASSIGNED), collector)
        for _ in range(2):
            joiner.process(
                StreamTuple(msg.WINDOW_DONE, (0,), msg.ASSIGNER, 0), collector
            )
        _, pairs = collector.on_stream(msg.JOIN_STATS)[0][1]
        assert pairs == frozenset({JoinPair(5, 9)})

    def test_tumbling_evicts_state(self):
        joiner = self._joiner()
        collector = FakeCollector()
        joiner.process(doc_tuple(Document({"a": 1}, doc_id=0), source=msg.ASSIGNER, stream=msg.ASSIGNED), collector)
        for _ in range(2):
            joiner.process(
                StreamTuple(msg.WINDOW_DONE, (0,), msg.ASSIGNER, 0), collector
            )
        collector.emitted.clear()
        # next window: the old document must be gone
        joiner.process(doc_tuple(Document({"a": 1}, doc_id=1), 1, source=msg.ASSIGNER, stream=msg.ASSIGNED), collector)
        for _ in range(2):
            joiner.process(
                StreamTuple(msg.WINDOW_DONE, (1,), msg.ASSIGNER, 0), collector
            )
        stats, _ = collector.on_stream(msg.JOIN_STATS)[0][1]
        assert stats.join_pairs == 0

    def test_compute_joins_disabled_counts_only(self):
        joiner = self._joiner(compute_joins=False)
        collector = FakeCollector()
        joiner.process(doc_tuple(Document({"a": 1}, doc_id=0), source=msg.ASSIGNER, stream=msg.ASSIGNED), collector)
        joiner.process(doc_tuple(Document({"a": 1}, doc_id=1), source=msg.ASSIGNER, stream=msg.ASSIGNED), collector)
        for _ in range(2):
            joiner.process(
                StreamTuple(msg.WINDOW_DONE, (0,), msg.ASSIGNER, 0), collector
            )
        stats, _ = collector.on_stream(msg.JOIN_STATS)[0][1]
        assert stats.join_pairs == 0
        assert stats.documents == 2


class TestMergerPersistence:
    def test_snapshot_restore_round_trip(self, fig3_documents):
        helper = TestMerger()
        merger = helper._merger()
        helper._run_protocol(merger, fig3_documents)
        snapshot = merger.snapshot()

        fresh = helper._merger()
        collector = FakeCollector()
        fresh.restore(snapshot, collector)
        # the restored state is rebroadcast to the Assigners
        (pset,) = collector.on_stream(msg.PARTITIONS)[0][1]
        assert pset.version == 1
        assert [p.pairs for p in pset.partitions] == [
            p.pairs for p in merger._partitions
        ]

    def test_restored_merger_handles_updates(self, fig3_documents):
        helper = TestMerger()
        merger = helper._merger()
        helper._run_protocol(merger, fig3_documents)
        fresh = helper._merger()
        fresh.restore(merger.snapshot(), FakeCollector())
        collector = FakeCollector()
        update = msg.ControlMessage(
            kind="update", window_id=1, pair=AVPair("Z", 1), co_pairs=()
        )
        fresh.process(StreamTuple(msg.CONTROL, (update,), msg.ASSIGNER, 0), collector)
        assert len(collector.on_stream(msg.PARTITION_UPDATE)) == 1

    def test_snapshot_preserves_version_counter(self, fig3_documents):
        helper = TestMerger()
        merger = helper._merger()
        helper._run_protocol(merger, fig3_documents, window_id=0)
        helper._run_protocol(merger, fig3_documents, window_id=1)
        fresh = helper._merger()
        fresh.restore(merger.snapshot(), FakeCollector())
        assert fresh._version == 2
