"""Integration tests for the two-stream (R ⋈ S) topology."""

import pytest

from repro.core.document import Document
from repro.data.serverlogs import ServerLogGenerator
from repro.join.binary import BinaryJoinPair, brute_force_binary_pairs
from repro.topology.pipeline import StreamJoinConfig, run_binary_stream_join


def _two_streams(n_windows=2, window_size=100):
    """rwData split into two streams with disjoint id ranges."""
    generator = ServerLogGenerator(seed=13)
    left_windows, right_windows = [], []
    for _ in range(n_windows):
        window = generator.next_window(window_size * 2)
        left = [Document(d.pairs, doc_id=d.doc_id) for d in window[:window_size]]
        right = [
            Document(d.pairs, doc_id=d.doc_id) for d in window[window_size:]
        ]
        left_windows.append(left)
        right_windows.append(right)
    return left_windows, right_windows


def _expected(left_windows, right_windows):
    truth = set()
    for left, right in zip(left_windows, right_windows):
        truth |= brute_force_binary_pairs(left, right)
    return frozenset(truth)


class TestBinaryPipeline:
    def test_exact_cross_stream_join(self):
        left_windows, right_windows = _two_streams()
        config = StreamJoinConfig(
            m=3, algorithm="AG", n_assigners=2,
            compute_joins=True, collect_pairs=True, binary=True,
        )
        result = run_binary_stream_join(config, left_windows, right_windows)
        assert result.join_pairs == _expected(left_windows, right_windows)

    def test_binary_flag_set_automatically(self):
        left_windows, right_windows = _two_streams(n_windows=1, window_size=40)
        config = StreamJoinConfig(
            m=2, algorithm="AG", n_assigners=1,
            compute_joins=True, collect_pairs=True,  # binary omitted
        )
        result = run_binary_stream_join(config, left_windows, right_windows)
        assert result.config.binary is True
        assert result.join_pairs == _expected(left_windows, right_windows)

    def test_no_intra_stream_pairs(self):
        left = [[Document({"k": 1}, doc_id=0), Document({"k": 1}, doc_id=1)]]
        right = [[Document({"z": 9}, doc_id=2)]]
        config = StreamJoinConfig(
            m=2, algorithm="AG", n_assigners=1, n_creators=1,
            compute_joins=True, collect_pairs=True, binary=True,
        )
        result = run_binary_stream_join(config, left, right)
        # docs 0 and 1 join each other but live on the same stream
        assert result.join_pairs == frozenset()

    def test_cross_pairs_oriented_left_right(self):
        left = [[Document({"k": 1}, doc_id=0)]]
        right = [[Document({"k": 1}, doc_id=7)]]
        config = StreamJoinConfig(
            m=2, algorithm="AG", n_assigners=1, n_creators=1,
            compute_joins=True, collect_pairs=True, binary=True,
        )
        result = run_binary_stream_join(config, left, right)
        assert result.join_pairs == frozenset({BinaryJoinPair(0, 7)})

    def test_mismatched_window_counts_rejected(self):
        from repro.topology.json_reader import TwoStreamSpout

        with pytest.raises(ValueError, match="same number of windows"):
            TwoStreamSpout([[]], [[], []])

    def test_binary_sliding_rejected(self):
        from repro.topology.joiner import JoinerBolt

        with pytest.raises(ValueError, match="tumbling"):
            JoinerBolt(binary=True, sliding_size=10)

    def test_metrics_cover_both_streams(self):
        left_windows, right_windows = _two_streams(n_windows=2, window_size=60)
        config = StreamJoinConfig(
            m=2, algorithm="AG", n_assigners=2, binary=True
        )
        result = run_binary_stream_join(config, left_windows, right_windows)
        assert all(m.documents == 120 for m in result.per_window)


class TestBinaryWithExpansion:
    def test_exact_under_attribute_expansion(self):
        """Two nbData-like streams with a ubiquitous Boolean: expansion
        rewrites the routing pair space, the cross-stream join must stay
        exact."""
        import random

        rng = random.Random(9)
        left_windows, right_windows = [], []
        next_id = 0
        for _ in range(2):
            left, right = [], []
            for _ in range(60):
                record = {
                    "bool": rng.random() < 0.5,
                    "key": rng.randrange(12),
                    "tag": rng.randrange(5),
                }
                left.append(Document(record, doc_id=next_id))
                next_id += 1
            for _ in range(60):
                record = {
                    "bool": rng.random() < 0.5,
                    "key": rng.randrange(12),
                    "extra": rng.randrange(4),
                }
                right.append(Document(record, doc_id=next_id))
                next_id += 1
            left_windows.append(left)
            right_windows.append(right)

        config = StreamJoinConfig(
            m=4, algorithm="AG", n_assigners=2,
            compute_joins=True, collect_pairs=True, binary=True,
        )
        result = run_binary_stream_join(config, left_windows, right_windows)
        assert result.join_pairs == _expected(left_windows, right_windows)
