"""Integration tests for the full Fig. 2 topology."""

import pytest

from repro.core.document import Document
from repro.data.nobench import NoBenchGenerator
from repro.data.serverlogs import ServerLogGenerator
from repro.exceptions import PartitioningError
from repro.join.base import brute_force_pairs
from repro.topology.pipeline import (
    PARTITIONERS,
    StreamJoinConfig,
    build_topology,
    run_stream_join,
)


def windows_from(generator_cls, n_windows=3, window_size=150, seed=3):
    generator = generator_cls(seed=seed)
    return [generator.next_window(window_size) for _ in range(n_windows)]


def expected_pairs(windows):
    truth = set()
    for window in windows:
        truth |= brute_force_pairs(window)
    return frozenset(truth)


class TestExactness:
    """The headline guarantee: the distributed join result is exact."""

    @pytest.mark.parametrize("algorithm", sorted(PARTITIONERS))
    def test_exact_join_rwdata(self, algorithm):
        windows = windows_from(ServerLogGenerator)
        coverage = 0.85 if algorithm == "DS" else 1.0
        config = StreamJoinConfig(
            m=4,
            algorithm=algorithm,
            n_creators=2,
            n_assigners=3,
            compute_joins=True,
            collect_pairs=True,
            expansion_coverage=coverage,
        )
        result = run_stream_join(config, windows)
        assert result.join_pairs == expected_pairs(windows)

    @pytest.mark.parametrize("algorithm", ["AG", "DS"])
    def test_exact_join_nbdata(self, algorithm):
        windows = windows_from(NoBenchGenerator, window_size=120)
        config = StreamJoinConfig(
            m=4,
            algorithm=algorithm,
            n_creators=2,
            n_assigners=2,
            compute_joins=True,
            collect_pairs=True,
        )
        result = run_stream_join(config, windows)
        assert result.join_pairs == expected_pairs(windows)

    def test_exact_with_single_machine(self):
        windows = windows_from(ServerLogGenerator, n_windows=2)
        config = StreamJoinConfig(
            m=1, algorithm="AG", n_assigners=2, compute_joins=True, collect_pairs=True
        )
        result = run_stream_join(config, windows)
        assert result.join_pairs == expected_pairs(windows)

    def test_windows_never_join_across_boundaries(self):
        """Tumbling semantics: identical docs in different windows don't pair."""
        a = [Document({"k": 1}, doc_id=0), Document({"z": 5}, doc_id=1)]
        b = [Document({"k": 1}, doc_id=2), Document({"z": 6}, doc_id=3)]
        config = StreamJoinConfig(
            m=2, algorithm="AG", n_assigners=1, n_creators=1,
            compute_joins=True, collect_pairs=True,
        )
        result = run_stream_join(config, [a, b])
        assert result.join_pairs == frozenset()


class TestMetrics:
    def test_bootstrap_window_broadcasts_everything(self):
        windows = windows_from(ServerLogGenerator)
        result = run_stream_join(
            StreamJoinConfig(m=4, algorithm="AG", n_assigners=2), windows
        )
        bootstrap = result.per_window[0]
        assert bootstrap.replication == pytest.approx(4.0)
        assert bootstrap.max_load == pytest.approx(1.0)
        assert bootstrap.broadcast_fraction == pytest.approx(1.0)

    def test_partitions_reduce_replication_after_bootstrap(self):
        windows = windows_from(ServerLogGenerator, n_windows=4, window_size=300)
        result = run_stream_join(
            StreamJoinConfig(m=4, algorithm="AG", n_assigners=2), windows
        )
        for metrics in result.per_window[1:]:
            assert metrics.replication < 4.0

    def test_one_metrics_record_per_window(self):
        windows = windows_from(ServerLogGenerator, n_windows=5)
        result = run_stream_join(
            StreamJoinConfig(m=3, algorithm="AG", n_assigners=2), windows
        )
        assert [m.window for m in result.per_window] == [0, 1, 2, 3, 4]

    def test_initial_partition_creation_not_counted_as_repartition(self):
        windows = windows_from(ServerLogGenerator, n_windows=3)
        result = run_stream_join(
            StreamJoinConfig(m=3, algorithm="AG", n_assigners=2), windows
        )
        assert 0 in result.repartition_windows
        assert not result.per_window[0].repartitioned

    def test_summary_excludes_bootstrap_by_default(self):
        windows = windows_from(ServerLogGenerator, n_windows=3)
        result = run_stream_join(
            StreamJoinConfig(m=4, algorithm="AG", n_assigners=2), windows
        )
        without = result.summary()
        with_bootstrap = result.summary(include_bootstrap=True)
        assert without.windows == 2
        assert with_bootstrap.windows == 3
        assert with_bootstrap.replication > without.replication

    def test_document_counts_preserved(self):
        windows = windows_from(ServerLogGenerator, n_windows=3, window_size=100)
        result = run_stream_join(
            StreamJoinConfig(m=3, algorithm="AG", n_assigners=2), windows
        )
        assert all(m.documents == 100 for m in result.per_window)


class TestDynamics:
    def test_drifting_stream_triggers_repartitions(self):
        """nbData's shifting sparse attributes force recomputations."""
        windows = windows_from(NoBenchGenerator, n_windows=6, window_size=200)
        result = run_stream_join(
            StreamJoinConfig(m=4, algorithm="AG", n_assigners=2, theta=0.2), windows
        )
        assert len(result.repartition_windows) > 1

    def test_higher_theta_repartitions_at_most_as_often(self):
        low = run_stream_join(
            StreamJoinConfig(m=4, algorithm="AG", n_assigners=2, theta=0.2),
            windows_from(ServerLogGenerator, n_windows=6),
        )
        high = run_stream_join(
            StreamJoinConfig(m=4, algorithm="AG", n_assigners=2, theta=2.0),
            windows_from(ServerLogGenerator, n_windows=6),
        )
        assert (
            high.summary().repartition_rate <= low.summary().repartition_rate
        )

    def test_stable_stream_does_not_repartition(self):
        """A stream identical in every window never degrades."""
        base = windows_from(ServerLogGenerator, n_windows=1, window_size=200)[0]
        windows = []
        next_id = 0
        for _ in range(4):
            window = []
            for doc in base:
                window.append(Document(doc.pairs, doc_id=next_id))
                next_id += 1
            windows.append(window)
        result = run_stream_join(
            StreamJoinConfig(m=3, algorithm="AG", n_assigners=2, theta=0.2), windows
        )
        assert result.repartition_windows == [0]


class TestConfigValidation:
    def test_unknown_algorithm(self):
        with pytest.raises(PartitioningError, match="unknown algorithm"):
            StreamJoinConfig(algorithm="MAGIC")

    def test_bad_m(self):
        with pytest.raises(PartitioningError):
            StreamJoinConfig(m=0)

    def test_build_topology_components(self):
        windows = windows_from(ServerLogGenerator, n_windows=1, window_size=10)
        topology = build_topology(StreamJoinConfig(m=3, n_assigners=2), windows)
        names = set(topology.components)
        assert names == {
            "reader", "partition_creator", "merger", "assigner",
            "joiner", "metrics_sink",
        }
        assert topology.components["joiner"].parallelism == 3
        assert topology.components["merger"].parallelism == 1


class TestAttributeOrderShipping:
    def test_merger_ships_sample_order(self):
        """The Section V-A order is computed at partition creation and
        delivered to the Joiners with the PartitionSet."""
        from repro.streaming.executor import LocalCluster
        from repro.topology import messages as msg
        from repro.topology.joiner import JoinerBolt
        from repro.topology.pipeline import build_topology

        windows = windows_from(ServerLogGenerator, n_windows=2, window_size=200)
        config = StreamJoinConfig(
            m=2, algorithm="AG", n_assigners=2, compute_joins=True
        )
        cluster = LocalCluster(build_topology(config, windows))
        cluster.run()
        for joiner in cluster.tasks(msg.JOINER):
            assert isinstance(joiner, JoinerBolt)
            order = joiner._order
            assert order is not None
            # Source appears in every rwData document: maximal frequency
            assert order.attributes[0] == "Source"

    def test_exactness_with_shipped_order(self):
        windows = windows_from(ServerLogGenerator, n_windows=3, window_size=120)
        config = StreamJoinConfig(
            m=3, algorithm="AG", n_assigners=2,
            compute_joins=True, collect_pairs=True,
        )
        result = run_stream_join(config, windows)
        assert result.join_pairs == expected_pairs(windows)
