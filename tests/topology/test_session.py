"""Tests for the incremental stream-join session."""

import pytest

from repro.data.serverlogs import ServerLogGenerator
from repro.join.base import brute_force_pairs
from repro.topology.pipeline import StreamJoinConfig, run_stream_join
from repro.topology.session import StreamJoinSession


def _config(**overrides):
    defaults = dict(
        m=3, algorithm="AG", n_creators=2, n_assigners=2,
        compute_joins=True, collect_pairs=True,
    )
    defaults.update(overrides)
    return StreamJoinConfig(**defaults)


class TestStreamJoinSession:
    def test_metrics_available_after_each_push(self):
        generator = ServerLogGenerator(seed=17)
        session = StreamJoinSession(_config())
        first = session.push_window(generator.next_window(120))
        assert first.window == 0
        assert first.replication == pytest.approx(3.0)  # bootstrap broadcast
        second = session.push_window(generator.next_window(120))
        assert second.window == 1
        assert second.replication < 3.0  # partitions installed

    def test_session_equals_batch_run(self):
        """Pushing windows one by one must be indistinguishable from the
        batch runner — same metrics, same join result."""
        generator = ServerLogGenerator(seed=18)
        windows = [generator.next_window(100) for _ in range(4)]

        batch = run_stream_join(_config(), windows)

        session = StreamJoinSession(_config())
        for window in windows:
            session.push_window(window)
        live = session.result()

        assert live.join_pairs == batch.join_pairs
        assert [w.replication for w in live.per_window] == [
            w.replication for w in batch.per_window
        ]
        assert live.repartition_windows == batch.repartition_windows
        assert [w.repartitioned for w in live.per_window] == [
            w.repartitioned for w in batch.per_window
        ]

    def test_join_result_is_exact(self):
        generator = ServerLogGenerator(seed=19)
        windows = [generator.next_window(90) for _ in range(3)]
        session = StreamJoinSession(_config())
        for window in windows:
            session.push_window(window)
        truth = set()
        for window in windows:
            truth |= brute_force_pairs(window)
        assert session.result().join_pairs == frozenset(truth)

    def test_empty_window_rejected(self):
        session = StreamJoinSession(_config())
        with pytest.raises(ValueError, match="empty window"):
            session.push_window([])

    def test_closed_session_rejects_pushes(self):
        generator = ServerLogGenerator(seed=20)
        session = StreamJoinSession(_config())
        session.push_window(generator.next_window(50))
        session.result()
        with pytest.raises(RuntimeError, match="closed"):
            session.push_window(generator.next_window(50))

    def test_binary_config_rejected(self):
        with pytest.raises(ValueError, match="binary"):
            StreamJoinSession(_config(binary=True))

    def test_windows_processed_counter(self):
        generator = ServerLogGenerator(seed=21)
        session = StreamJoinSession(_config())
        assert session.windows_processed == 0
        session.push_window(generator.next_window(40))
        assert session.windows_processed == 1
