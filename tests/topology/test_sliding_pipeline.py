"""Integration tests for sliding windows in the full topology."""

from repro.core.document import Document
from repro.join.base import JoinPair
from repro.topology.pipeline import StreamJoinConfig, run_stream_join


def _reidentified(windows):
    out = []
    next_id = 0
    for window in windows:
        fresh = []
        for doc in window:
            fresh.append(Document(doc.pairs, doc_id=next_id))
            next_id += 1
        out.append(fresh)
    return out


class TestSlidingPipeline:
    def test_joins_span_window_boundaries(self):
        """The whole point of sliding mode: documents in adjacent windows
        can join, which tumbling mode forbids."""
        a = [Document({"k": 1}, doc_id=0), Document({"z": 5}, doc_id=1)]
        b = [Document({"k": 1}, doc_id=2), Document({"z": 6}, doc_id=3)]
        config = StreamJoinConfig(
            m=2, algorithm="AG", n_assigners=1, n_creators=1,
            compute_joins=True, collect_pairs=True, sliding_size=10,
        )
        result = run_stream_join(config, [a, b])
        assert JoinPair(0, 2) in result.join_pairs

    def test_expiry_limits_the_extent(self):
        windows = [
            [Document({"k": 1}, doc_id=0), Document({"z": 1}, doc_id=1)],
            [Document({"z": 2}, doc_id=2), Document({"z": 3}, doc_id=3)],
            [Document({"k": 1}, doc_id=4), Document({"z": 4}, doc_id=5)],
        ]
        config = StreamJoinConfig(
            m=1, algorithm="AG", n_assigners=1, n_creators=1,
            compute_joins=True, collect_pairs=True, sliding_size=3,
        )
        result = run_stream_join(config, windows)
        # doc 0 and doc 4 share k:1 but are 4 arrivals apart > extent 3
        assert JoinPair(0, 4) not in result.join_pairs

    def test_sliding_matches_single_node_reference(self):
        """With one machine the pipeline must equal the standalone
        sliding joiner over the concatenated stream."""
        from repro.data.serverlogs import ServerLogGenerator
        from repro.join.sliding import brute_force_sliding_pairs

        generator = ServerLogGenerator(seed=12)
        windows = [generator.next_window(80) for _ in range(3)]
        stream = [doc for window in windows for doc in window]
        config = StreamJoinConfig(
            m=1, algorithm="AG", n_assigners=1, n_creators=1,
            compute_joins=True, collect_pairs=True, sliding_size=60,
        )
        result = run_stream_join(config, windows)
        assert result.join_pairs == brute_force_sliding_pairs(stream, 60)

    def test_tumbling_remains_default(self):
        config = StreamJoinConfig(m=2)
        assert config.sliding_size is None
