"""Stress tests: join exactness under heavy dynamics.

The trickiest interplay in the system is between the exactness fallback
(broadcast on unseen pairs), δ partition updates, and θ repartitioning —
each changes routing mid-stream.  These tests engineer streams that
exercise all three and verify the distributed result stays exactly the
single-node ground truth.
"""

import random

import pytest

from repro.core.document import Document
from repro.join.base import brute_force_pairs
from repro.topology.pipeline import StreamJoinConfig, run_stream_join


def _truth(windows):
    truth = set()
    for window in windows:
        truth |= brute_force_pairs(window)
    return frozenset(truth)


def _run(windows, **overrides):
    config = StreamJoinConfig(
        m=overrides.pop("m", 3),
        algorithm=overrides.pop("algorithm", "AG"),
        n_creators=2,
        n_assigners=overrides.pop("n_assigners", 2),
        compute_joins=True,
        collect_pairs=True,
        **overrides,
    )
    return run_stream_join(config, windows)


class TestExactnessUnderDynamics:
    def test_fully_drifting_vocabulary(self):
        """Every window uses a brand-new attribute vocabulary: all
        documents hit the unseen-pair fallback, repartitions fire
        constantly, and the result must still be exact."""
        rng = random.Random(3)
        windows = []
        next_id = 0
        for w in range(4):
            window = []
            for _ in range(60):
                record = {
                    f"era{w}_k{rng.randrange(4)}": rng.randrange(3),
                    f"era{w}_v{rng.randrange(3)}": rng.randrange(3),
                }
                window.append(Document(record, doc_id=next_id))
                next_id += 1
            windows.append(window)
        result = _run(windows, theta=0.1)
        assert result.join_pairs == _truth(windows)
        assert len(result.repartition_windows) >= 2  # dynamics actually fired

    def test_delta_updates_fire_and_stay_exact(self):
        """A pair absent from the bootstrap sample recurs heavily later:
        δ updates graft it onto a partition mid-window; routing changes
        while its documents are in flight."""
        stable = [
            Document({"base": i % 5, "tag": i % 3}, doc_id=i) for i in range(80)
        ]
        surge = [
            Document({"hot": 1, "serial": i % 7}, doc_id=100 + i)
            for i in range(80)
        ]
        windows = [stable, surge]
        result = _run(windows, delta=2, theta=5.0)  # updates yes, repartition no
        assert result.join_pairs == _truth(windows)
        assert result.repartition_windows == [0]

    @pytest.mark.parametrize("theta", [0.05, 0.5, 5.0])
    def test_exact_at_every_repartition_aggressiveness(self, theta):
        from repro.data.nobench import NoBenchGenerator

        generator = NoBenchGenerator(seed=21)
        windows = [generator.next_window(90) for _ in range(4)]
        result = _run(windows, theta=theta, m=4)
        assert result.join_pairs == _truth(windows)

    @pytest.mark.parametrize("delta", [1, 2, 10])
    def test_exact_at_every_update_aggressiveness(self, delta):
        from repro.data.serverlogs import ServerLogGenerator

        generator = ServerLogGenerator(seed=22, new_entities_per_window=20)
        windows = [generator.next_window(100) for _ in range(3)]
        result = _run(windows, delta=delta)
        assert result.join_pairs == _truth(windows)

    def test_exact_with_many_assigners_and_machines(self):
        """δ counting is per-assigner and routing per-machine; crank both."""
        from repro.data.serverlogs import ServerLogGenerator

        generator = ServerLogGenerator(seed=23)
        windows = [generator.next_window(150) for _ in range(3)]
        result = _run(windows, m=7, n_assigners=5)
        assert result.join_pairs == _truth(windows)

    def test_exact_when_every_window_is_one_document(self):
        windows = [[Document({"k": i}, doc_id=i)] for i in range(5)]
        result = _run(windows, m=2, n_assigners=1)
        assert result.join_pairs == frozenset()
        assert len(result.per_window) == 5
