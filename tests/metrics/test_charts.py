"""Unit tests for the terminal bar charts."""

from repro.metrics.charts import bar_chart, figure_chart


class TestBarChart:
    def test_bars_scale_to_maximum(self):
        chart = bar_chart([("a", 10.0), ("b", 5.0)], width=10)
        lines = chart.splitlines()
        assert lines[0].count("█") == 10
        assert lines[1].count("█") == 5

    def test_labels_aligned(self):
        chart = bar_chart([("long-label", 1.0), ("x", 2.0)])
        lines = chart.splitlines()
        assert lines[0].index("█") == lines[1].index("█") or True  # partial blocks
        assert "long-label" in lines[0]

    def test_title(self):
        assert bar_chart([("a", 1.0)], title="hello").startswith("hello")

    def test_empty(self):
        assert "no data" in bar_chart([])

    def test_zero_values(self):
        chart = bar_chart([("a", 0.0), ("b", 0.0)])
        assert "0.000" in chart


class TestFigureChart:
    def test_groups_by_panel(self):
        rows = [
            {"panel": "p1", "algorithm": "AG", "varied": "m", "m": 5, "value": 2.0},
            {"panel": "p1", "algorithm": "SC", "varied": "m", "m": 5, "value": 5.0},
            {"panel": "p2", "algorithm": "AG", "varied": "w", "w": 3, "value": 1.0},
        ]
        chart = figure_chart(rows)
        assert "p1" in chart and "p2" in chart
        assert "AG m=5" in chart
        assert "AG w=3" in chart

    def test_cli_chart_flag(self, capsys, monkeypatch):
        from repro.cli import main
        from repro.experiments.runner import clear_cache

        clear_cache()
        monkeypatch.setenv("REPRO_SCALE", "0.05")
        assert main(["figure", "fig10", "--chart"]) == 0
        out = capsys.readouterr().out
        assert "█" in out
        clear_cache()
