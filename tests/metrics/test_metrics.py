"""Unit tests for the Section VII-C metrics."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.metrics.gini import gini_coefficient
from repro.metrics.load import assigned_counts, max_processing_load, processing_loads
from repro.metrics.replication import (
    average_replication,
    broadcast_fraction,
    replication_from_counts,
)
from repro.metrics.report import (
    WindowMetrics,
    aggregate_metrics,
    format_table,
)
from repro.partitioning.router import RoutingDecision


def decision(targets, broadcast=False):
    return RoutingDecision(tuple(targets), broadcast=broadcast)


class TestGini:
    def test_perfect_equality_is_zero(self):
        assert gini_coefficient([5, 5, 5, 5]) == pytest.approx(0.0)

    def test_total_concentration(self):
        # one machine carries everything: G = (n-1)/n
        assert gini_coefficient([10, 0, 0, 0]) == pytest.approx(0.75)

    def test_known_value(self):
        # loads 1,2,3: mean abs diff formulation gives 2/9
        assert gini_coefficient([1, 2, 3]) == pytest.approx(2 / 9)

    def test_scale_invariant(self):
        assert gini_coefficient([1, 2, 3]) == pytest.approx(
            gini_coefficient([10, 20, 30])
        )

    def test_order_invariant(self):
        assert gini_coefficient([3, 1, 2]) == pytest.approx(gini_coefficient([1, 2, 3]))

    def test_all_zero_loads(self):
        assert gini_coefficient([0, 0, 0]) == 0.0

    def test_single_machine(self):
        assert gini_coefficient([7]) == pytest.approx(0.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            gini_coefficient([])

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            gini_coefficient([1, -1])

    @given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=30))
    def test_property_bounded(self, loads):
        g = gini_coefficient(loads)
        assert 0.0 <= g < 1.0


class TestReplication:
    def test_average(self):
        decisions = [decision([0]), decision([0, 1]), decision([0, 1, 2])]
        assert average_replication(decisions) == pytest.approx(2.0)

    def test_minimum_is_one(self):
        assert average_replication([decision([3])]) == 1.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            average_replication([])

    def test_from_counts(self):
        assert replication_from_counts([1, 2, 3]) == pytest.approx(2.0)

    def test_from_counts_rejects_zero(self):
        with pytest.raises(ValueError):
            replication_from_counts([1, 0])

    def test_broadcast_fraction(self):
        decisions = [decision([0]), decision([0, 1], broadcast=True)]
        assert broadcast_fraction(decisions) == pytest.approx(0.5)


class TestProcessingLoad:
    def test_assigned_counts(self):
        decisions = [decision([0, 1]), decision([1])]
        assert assigned_counts(decisions, 3) == [1, 2, 0]

    def test_loads_are_fractions_of_documents(self):
        decisions = [decision([0, 1]), decision([1])]
        assert processing_loads(decisions, 2) == [0.5, 1.0]

    def test_max_processing_load(self):
        decisions = [decision([0]), decision([0]), decision([1])]
        assert max_processing_load(decisions, 2) == pytest.approx(2 / 3)

    def test_replicated_loads_can_sum_over_one(self):
        decisions = [decision([0, 1])]
        assert sum(processing_loads(decisions, 2)) == pytest.approx(2.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            processing_loads([], 2)


class TestReporting:
    def _metrics(self, window, replication=2.0, repartitioned=False):
        return WindowMetrics(
            window=window,
            replication=replication,
            gini=0.1,
            max_load=0.5,
            documents=100,
            repartitioned=repartitioned,
            join_pairs=10,
        )

    def test_aggregate_averages(self):
        summary = aggregate_metrics(
            [self._metrics(0, 1.0), self._metrics(1, 3.0)]
        )
        assert summary.replication == pytest.approx(2.0)
        assert summary.windows == 2
        assert summary.join_pairs == 20

    def test_repartition_rate(self):
        summary = aggregate_metrics(
            [
                self._metrics(0, repartitioned=True),
                self._metrics(1),
                self._metrics(2, repartitioned=True),
                self._metrics(3),
            ]
        )
        assert summary.repartition_rate == pytest.approx(0.5)

    def test_aggregate_empty_rejected(self):
        with pytest.raises(ValueError):
            aggregate_metrics([])

    def test_as_dict(self):
        summary = aggregate_metrics([self._metrics(0)])
        data = summary.as_dict()
        assert set(data) == {
            "replication", "gini", "max_load", "repartition_rate",
            "windows", "join_pairs",
        }

    def test_format_table_alignment(self):
        rows = [{"a": 1, "b": "xx"}, {"a": 22, "b": "y"}]
        table = format_table(rows, ("a", "b"))
        lines = table.splitlines()
        assert lines[0].startswith("a")
        assert len(lines) == 4
        assert len({len(line.rstrip()) for line in lines[:2]}) <= 2

    def test_format_table_floats(self):
        table = format_table([{"v": 1.23456}], ("v",))
        assert "1.235" in table

    def test_format_table_missing_column(self):
        table = format_table([{"a": 1}], ("a", "missing"))
        assert "missing" in table
