"""Unit tests for sample-based partitioning-quality estimation."""

import pytest

from repro.core.document import AVPair, Document
from repro.metrics.estimation import estimate_on_sample
from repro.partitioning.association import AssociationGroupPartitioner
from repro.partitioning.base import Partition
from repro.partitioning.router import DocumentRouter


def _partitions(*pair_sets):
    return [Partition(index=i, pairs=set(ps)) for i, ps in enumerate(pair_sets)]


class TestEstimateOnSample:
    def test_single_partition_sample(self):
        partitions = _partitions({AVPair("a", 1)})
        estimate = estimate_on_sample(
            partitions, {frozenset({AVPair("a", 1)}): 4}, 0, 4
        )
        assert estimate.replication == 1.0
        assert estimate.max_load == 1.0
        assert estimate.broadcast_fraction == 0.0

    def test_document_matching_two_partitions(self):
        partitions = _partitions({AVPair("a", 1)}, {AVPair("b", 2)})
        sample = {frozenset({AVPair("a", 1), AVPair("b", 2)}): 2}
        estimate = estimate_on_sample(partitions, sample, 0, 2)
        assert estimate.replication == 2.0
        assert estimate.machine_counts == (2, 2)

    def test_unowned_pair_broadcasts(self):
        partitions = _partitions({AVPair("a", 1)}, set(), set())
        sample = {frozenset({AVPair("a", 1), AVPair("zz", 0)}): 1}
        estimate = estimate_on_sample(partitions, sample, 0, 1)
        assert estimate.replication == 3.0
        assert estimate.broadcast_fraction == 1.0

    def test_pre_counted_broadcasts(self):
        partitions = _partitions({AVPair("a", 1)}, set())
        sample = {frozenset({AVPair("a", 1)}): 3}
        estimate = estimate_on_sample(partitions, sample, 1, 4)
        # 3 matched (1 machine each) + 1 broadcast (2 machines)
        assert estimate.replication == pytest.approx(5 / 4)
        assert estimate.broadcast_fraction == pytest.approx(1 / 4)

    def test_empty_sample(self):
        estimate = estimate_on_sample(_partitions(set(), set()), {}, 0, 0)
        assert estimate.replication == 1.0
        assert estimate.max_load == 0.5

    def test_no_partitions_rejected(self):
        with pytest.raises(ValueError):
            estimate_on_sample([], {}, 0, 1)

    def test_estimate_matches_actual_routing(self):
        """The estimate must equal what the DocumentRouter actually does
        when the live stream is exactly the sample."""
        from collections import Counter

        from repro.data.serverlogs import ServerLogGenerator

        docs = ServerLogGenerator(seed=11).documents(400)
        result = AssociationGroupPartitioner().create_partitions(docs, 4)
        sample_sets = Counter(d.avpair_set() for d in docs)
        estimate = estimate_on_sample(result.partitions, sample_sets, 0, len(docs))

        router = DocumentRouter(result.partitions)
        decisions = [router.route(d) for d in docs]
        actual_replication = sum(d.replication for d in decisions) / len(docs)
        counts = [0] * 4
        for decision in decisions:
            for target in decision.targets:
                counts[target] += 1
        assert estimate.replication == pytest.approx(actual_replication)
        assert estimate.machine_counts == tuple(counts)
