"""Unit tests for the command-line interface."""

import argparse

import pytest

from repro.cli import _elastic_argument, main
from repro.streaming.elastic import ElasticPolicy


class TestQuickstart:
    def test_prints_fig1_pairs(self, capsys):
        assert main(["quickstart"]) == 0
        out = capsys.readouterr().out
        assert "d1 ⋈ d2" in out
        assert "d5 ⋈ d6" in out
        assert "d1 ⋈ d3" not in out  # conflicting Severity


class TestJoinCommand:
    def test_runs_and_reports(self, capsys):
        assert main(["join", "--algorithm", "FPJ", "--docs", "300"]) == 0
        out = capsys.readouterr().out
        assert "FPJ" in out
        assert "join_pairs" in out

    def test_nbdata_hbj(self, capsys):
        assert main(
            ["join", "--algorithm", "HBJ", "--dataset", "nbData", "--docs", "200"]
        ) == 0
        assert "HBJ" in capsys.readouterr().out


class TestTopologyCommand:
    def test_prints_per_window_table(self, capsys):
        code = main(
            [
                "topology", "--dataset", "rwData", "--algorithm", "AG",
                "-m", "3", "--windows", "2", "-w", "1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "replication" in out
        assert "summary" in out

    def test_rejects_unknown_algorithm(self):
        with pytest.raises(SystemExit):
            main(["topology", "--algorithm", "XX"])


class TestGenerateCommand:
    def test_writes_jsonl(self, tmp_path, capsys):
        out_file = tmp_path / "docs.jsonl"
        code = main(
            ["generate", "--dataset", "nbData", "--docs", "40", "--out", str(out_file)]
        )
        assert code == 0
        assert len(out_file.read_text().splitlines()) == 40

    def test_requires_out(self):
        with pytest.raises(SystemExit):
            main(["generate", "--docs", "5"])


class TestArgumentErrors:
    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_unknown_figure(self):
        with pytest.raises(SystemExit):
            main(["figure", "fig99"])


class TestElasticArgument:
    def test_min_max_bounds(self):
        policy = _elastic_argument("2:4")
        assert policy == ElasticPolicy(min_workers=2, max_workers=4)

    def test_bare_flag_default_is_valid(self):
        # `--elastic` without a value falls back to const="1:8", which
        # goes through the same converter
        assert _elastic_argument("1:8") == ElasticPolicy(
            min_workers=1, max_workers=8
        )

    @pytest.mark.parametrize("value", ["", "3", "a:b", "4:2", "0:8", ":"])
    def test_bad_bounds_rejected(self, value):
        with pytest.raises(argparse.ArgumentTypeError):
            _elastic_argument(value)

    def test_cli_rejects_bad_elastic_value(self):
        with pytest.raises(SystemExit):
            main(["topology", "--backend", "parallel", "--elastic", "9:1"])


class TestFigureCommand:
    def test_fig10_small_scale(self, capsys, monkeypatch):
        from repro.experiments.runner import clear_cache

        clear_cache()
        monkeypatch.setenv("REPRO_SCALE", "0.05")
        assert main(["figure", "fig10"]) == 0
        out = capsys.readouterr().out
        assert "ideal" in out and "AG" in out
        clear_cache()

    def test_topology_kl_algorithm(self, capsys):
        code = main(
            ["topology", "--algorithm", "KL", "-m", "2", "--windows", "2", "-w", "1"]
        )
        assert code == 0
        assert "replication" in capsys.readouterr().out


class TestAnalyzeCommand:
    def test_runs_end_to_end(self, capsys):
        assert main(["analyze", "--docs", "400", "--windows", "2", "-m", "2"]) == 0
        out = capsys.readouterr().out
        assert "joined pairs" in out
        assert "attributes gained" in out


class TestStatsCommand:
    def test_prints_metric_series(self, capsys):
        assert main(["stats", "--docs", "200", "--windows", "2", "-m", "2"]) == 0
        out = capsys.readouterr().out
        assert "joiner.probes{algorithm=FPJ}" in out
        assert "executor.execute_seconds{component=joiner}" in out
        assert "assigner.machine_docs{machine=0}" in out

    def test_json_out_round_trips(self, tmp_path, capsys):
        import json

        target = tmp_path / "stats.json"
        code = main(
            ["stats", "--docs", "200", "--windows", "2", "-m", "2",
             "--json", "--out", str(target)]
        )
        assert code == 0
        data = json.loads(target.read_text())
        assert data["counters"]["joiner.probes{algorithm=FPJ}"] > 0
        assert set(data) == {"counters", "gauges", "histograms", "spans"}


class TestIngestCommand:
    def test_generate_then_ingest_round_trip(self, tmp_path, capsys):
        path = tmp_path / "docs.jsonl"
        assert main(["generate", "--dataset", "rwData", "--docs", "300",
                     "--out", str(path)]) == 0
        capsys.readouterr()
        code = main(["ingest", str(path), "-m", "3",
                     "--window-size", "100", "--joins"])
        assert code == 0
        out = capsys.readouterr().out
        assert "window 0" in out and "window 2" in out
        assert "300 documents total" in out

    def test_empty_file(self, tmp_path, capsys):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert main(["ingest", str(path)]) == 1
