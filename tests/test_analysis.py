"""Unit tests for the join-result analytics layer."""

import pytest

from repro.analysis import (
    SuspicionScorer,
    complement_statistics,
    materialize_joins,
)
from repro.core.document import Document
from repro.join.base import JoinPair


@pytest.fixture
def corpus():
    docs = {
        1: Document({"User": "A", "Status": "failure", "Session": 3}, doc_id=1),
        2: Document({"User": "A", "Severity": "Critical", "Session": 3}, doc_id=2),
        3: Document({"User": "B", "Status": "success", "Session": 7}, doc_id=3),
        4: Document({"User": "B", "Location": "Munich", "Session": 7}, doc_id=4),
        5: Document({"User": "C", "Status": "denied", "Location": "Munich"}, doc_id=5),
        6: Document({"Location": "Munich", "Severity": "Error"}, doc_id=6),
    }
    pairs = [JoinPair(1, 2), JoinPair(3, 4), JoinPair(5, 6)]
    return docs, pairs


class TestMaterialize:
    def test_merged_documents(self, corpus):
        docs, pairs = corpus
        merged = dict(materialize_joins(pairs, docs))
        assert merged[JoinPair(1, 2)].pairs == {
            "User": "A", "Status": "failure", "Severity": "Critical", "Session": 3,
        }

    def test_missing_id_raises(self, corpus):
        docs, _ = corpus
        with pytest.raises(KeyError):
            list(materialize_joins([JoinPair(1, 99)], docs))

    def test_empty_pairs(self, corpus):
        docs, _ = corpus
        assert list(materialize_joins([], docs)) == []


class TestComplementStatistics:
    def test_counts_one_sided_attributes(self, corpus):
        docs, pairs = corpus
        stats = complement_statistics(pairs, docs)
        # Status appears on exactly one side of pairs (1,2), (3,4), (5,6)
        assert stats["Status"] == 3
        assert stats["Severity"] == 2
        # Session is shared in (1,2) and (3,4): never gained there
        assert stats["Session"] == 0

    def test_empty(self, corpus):
        docs, _ = corpus
        assert complement_statistics([], docs) == {}


class TestSuspicionScorer:
    def test_failed_access_scoring(self, corpus):
        docs, pairs = corpus
        scorer = SuspicionScorer()
        scorer.observe_joins(pairs, docs)
        alerts = {alert.entity: alert for alert in scorer.user_alerts()}
        # user A: failure joined with Critical -> two rule hits
        assert alerts["A"].score == 2
        assert any("failure-with-severity" in r for r in alerts["A"].reasons)
        # user B only has successes
        assert "B" not in alerts
        # user C: denied access joined with an Error event
        assert alerts["C"].score == 2

    def test_location_alerts(self, corpus):
        docs, pairs = corpus
        scorer = SuspicionScorer()
        scorer.observe_joins(pairs, docs)
        locations = scorer.location_alerts()
        assert locations[0].entity == "Munich"
        assert locations[0].score == 1

    def test_location_threshold(self, corpus):
        docs, pairs = corpus
        scorer = SuspicionScorer()
        scorer.observe_joins(pairs, docs)
        assert scorer.location_alerts(minimum_failures=2) == []

    def test_top_limits_alerts(self, corpus):
        docs, pairs = corpus
        scorer = SuspicionScorer()
        scorer.observe_joins(pairs, docs)
        assert len(scorer.user_alerts(top=1)) == 1

    def test_end_to_end_with_pipeline(self):
        """The full loop: generate -> distribute -> join -> analyze."""
        from repro.data.serverlogs import ServerLogGenerator
        from repro.topology.pipeline import StreamJoinConfig, run_stream_join

        generator = ServerLogGenerator(seed=6)
        windows = [generator.next_window(250) for _ in range(2)]
        # plant a known attack pattern in the second window
        windows[1] = windows[1] + [
            Document(
                {"User": "mallory", "Status": "failure", "Severity": "Critical"},
                doc_id=10_001,
            ),
            Document(
                {"User": "mallory", "Severity": "Critical", "MsgId": 99},
                doc_id=10_002,
            ),
        ]
        by_id = {d.doc_id: d for w in windows for d in w}
        result = run_stream_join(
            StreamJoinConfig(m=3, algorithm="AG", n_assigners=2,
                             compute_joins=True, collect_pairs=True),
            windows,
        )
        scorer = SuspicionScorer()
        scorer.observe_joins(result.join_pairs, by_id)
        alerts = {alert.entity: alert for alert in scorer.user_alerts()}
        assert "mallory" in alerts
        assert alerts["mallory"].score >= 2
