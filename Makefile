# Convenience targets for the repro library.

PYTHON ?= python

.PHONY: install test test-parallel test-chaos test-distributed test-elastic verify bench bench-smoke bench-scaling bench-hotpath bench-hotpath-smoke bench-check bench-throughput bench-throughput-smoke bench-check-throughput soak-smoke profile-parent figures report examples clean

install:
	pip install -e . --no-build-isolation

# tier-1: includes the parallel-backend smoke case; the heavyweight
# multi-process suite is opt-in via `make test-parallel`
test: bench-smoke
	PYTHONPATH=src $(PYTHON) -m pytest tests/

# socket legs of the backend matrix carry both markers and run under
# test-distributed only
test-parallel:
	PYTHONPATH=src $(PYTHON) -m pytest -m 'parallel and not distributed'

# seeded fault-injection suite (worker kills, poison tuples, delayed
# acks); the coreutils timeout is a hard stop should recovery ever hang
test-chaos:
	PYTHONPATH=src timeout 600 $(PYTHON) -m pytest -m chaos

# socket-transport suite (worker subprocesses over TCP, including the
# chaos-over-socket acceptance scenario); the suite itself gates on no
# orphaned `repro.worker` processes surviving it
test-distributed:
	PYTHONPATH=src timeout 600 $(PYTHON) -m pytest -m distributed

# elastic worker-pool chaos suite (forced scale/migrate schedules,
# destination kills mid-migration, load shedding) on pipe and socket
test-elastic:
	PYTHONPATH=src timeout 600 $(PYTHON) -m pytest -m elastic

# the full pre-merge gate: tier-1, the forked backend suite, chaos,
# the socket-transport suite, the elastic suite, the benchmark smokes,
# and a capped soak on every backend
verify: test test-parallel test-chaos test-distributed test-elastic bench-hotpath-smoke bench-throughput-smoke soak-smoke

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Regenerate results/ext_scaling.json: throughput vs m for both the
# local and the parallel execution backend (one row per backend/m).
bench-scaling:
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/test_ext_scaling.py --benchmark-only

# Regenerate BENCH_hotpath.json: per-document probe/insert/route
# latencies of the dictionary-encoded hot paths (see docs/performance.md)
bench-hotpath:
	PYTHONPATH=src $(PYTHON) benchmarks/test_micro_hotpath.py

# Fast correctness smoke over the benchmark harness itself: batched
# kernels agree with the streaming loop and both ship paths round-trip
# on the bench workload, without the multi-minute measurement run
bench-hotpath-smoke:
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/test_micro_hotpath.py

# Fail on >25% per-metric regression vs the committed BENCH_hotpath.json
bench-check:
	PYTHONPATH=src $(PYTHON) scripts/check_bench.py

# Regenerate BENCH_throughput.json: sustained docs/sec and p50/p99 e2e
# latency per (backend x zoo workload), measured by rate-ramped soaks
# until saturation (see docs/soak.md)
bench-throughput:
	PYTHONPATH=src $(PYTHON) benchmarks/test_throughput.py

# Fast correctness smoke over the throughput harness: scaled-down
# local-only soak cells produce sane, healthy metrics
bench-throughput-smoke:
	PYTHONPATH=src timeout 300 $(PYTHON) -m pytest benchmarks/test_throughput.py

# Direction-aware gate vs the committed BENCH_throughput.json:
# throughput drops and latency rises both fail past the threshold
bench-check-throughput:
	PYTHONPATH=src $(PYTHON) scripts/check_bench.py --suite throughput

# Capped long-running-session smoke on every backend: each run ramps an
# adversarial workload for a few seconds and asserts bounded memory and
# monotonic metrics (nonzero exit on violation)
soak-smoke:
	PYTHONPATH=src timeout 60 $(PYTHON) -m repro soak --workload zipf \
		--max-seconds 6 --epoch-windows 2 --assert-memory
	PYTHONPATH=src timeout 90 $(PYTHON) -m repro soak --workload drift \
		--backend parallel --transport pipe --workers 2 --elastic 2:4 \
		--max-seconds 8 --epoch-windows 2 --assert-memory
	PYTHONPATH=src timeout 120 $(PYTHON) -m repro soak --workload burst \
		--backend parallel --transport socket --workers 2 \
		--max-seconds 8 --epoch-windows 2 --assert-memory

# cProfile the parent-side data plane (routing, encoding, shipping,
# barrier bookkeeping) over a short zipf soak on the parallel/pipe
# backend; perf PRs against the parent loop start here.  Override with
# e.g. `make profile-parent PROFILE_ARGS='--backend socket --top 40'`.
profile-parent:
	PYTHONPATH=src $(PYTHON) scripts/profile_parent.py $(PROFILE_ARGS)

# Instrumented smoke run: exercises the observability layer end to end
# and persists the metric snapshot for the report tooling.
bench-smoke:
	PYTHONPATH=src $(PYTHON) -m repro stats --json --out results/obs_smoke.json

figures:
	$(PYTHON) -m repro figure all --save

report:
	$(PYTHON) -m repro report --out results/REPORT.md

examples:
	@for f in examples/*.py; do echo "=== $$f"; $(PYTHON) $$f || exit 1; done

clean:
	rm -rf results .pytest_cache .hypothesis
	find . -name __pycache__ -type d -exec rm -rf {} +
