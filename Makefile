# Convenience targets for the repro library.

PYTHON ?= python

.PHONY: install test bench figures report examples clean

install:
	pip install -e . --no-build-isolation

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

figures:
	$(PYTHON) -m repro figure all --save

report:
	$(PYTHON) -m repro report --out results/REPORT.md

examples:
	@for f in examples/*.py; do echo "=== $$f"; $(PYTHON) $$f || exit 1; done

clean:
	rm -rf results .pytest_cache .hypothesis
	find . -name __pycache__ -type d -exec rm -rf {} +
