# Convenience targets for the repro library.

PYTHON ?= python

.PHONY: install test bench bench-smoke figures report examples clean

install:
	pip install -e . --no-build-isolation

test: bench-smoke
	PYTHONPATH=src $(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Instrumented smoke run: exercises the observability layer end to end
# and persists the metric snapshot for the report tooling.
bench-smoke:
	PYTHONPATH=src $(PYTHON) -m repro stats --json --out results/obs_smoke.json

figures:
	$(PYTHON) -m repro figure all --save

report:
	$(PYTHON) -m repro report --out results/REPORT.md

examples:
	@for f in examples/*.py; do echo "=== $$f"; $(PYTHON) $$f || exit 1; done

clean:
	rm -rf results .pytest_cache .hypothesis
	find . -name __pycache__ -type d -exec rm -rf {} +
